//! Symbolic word index: SAX words over the PAA sketch planes for
//! sub-linear candidate generation (ROADMAP item 2).
//!
//! Tiers 0–4 of the cascade prune *per candidate*: every query still
//! touches every group of a length, even when the tier-0 sketch kills a
//! candidate in O(w). This module adds the layer above the cascade: each
//! group representative's PAA sketch is discretized into a packed **SAX
//! word** (Gaussian breakpoints, [`crate::OnexConfig::sax_alphabet`]
//! symbols per segment), the words are sorted into a coarse-to-fine prefix
//! hierarchy (iSAX-style: level ℓ fixes the top ℓ bits of every symbol),
//! and each hierarchy bucket carries the min/max envelope of its member
//! representatives' sketches.
//!
//! At query time [`SymIndex::mark_skips`] walks the hierarchy once and
//! *certifies* whole buckets as prunable: a bucket is skipped only when a
//! conservative bound — computed by the **same kernel** tier 0 uses —
//! already exceeds the cascade's tier-0 pruning limit, so tier 0 would
//! have pruned every group inside it anyway. The surviving groups are the
//! candidate set handed to the cascade in its usual order: **index
//! proposes, cascade disposes** — query results (and every pre-existing
//! counter) stay byte-identical with the index on or off. Whenever the
//! engagement conditions fail (length mismatch, degenerate sketch,
//! infinite cutoff, …) the query falls back to the full slab scan and
//! counts an `index_fallbacks`.
//!
//! The packed word planes themselves live in the columnar
//! [`LengthSlab`] (`rep_words` / `member_words`), are maintained
//! incrementally through every lifecycle mutation exactly like the sketch
//! planes they discretize, and are persisted as bulk blocks in snapshot
//! v5. The probe structure here is a deterministic pure function of the
//! slab and is rebuilt at assembly; [`SymIndex::validate`] re-derives it
//! bit-for-bit.

use crate::store::LengthSlab;
use crate::{OnexError, Result};
use onex_dist::lb_paa_env_sq;
use serde::{Deserialize, Serialize};

/// How a SAX word is derived from a PAA sketch: alphabet, per-symbol bit
/// width, segment count, and the Gaussian breakpoints that partition the
/// value axis into symbols.
///
/// Breakpoints are the quantiles of a Gaussian fitted to the engine's
/// min-max-normalized value space: `β_i = 1/2 + Φ⁻¹(i/a)/4` (mean 1/2,
/// σ = 1/4, so ±2σ spans the unit interval). The classic SAX table assumes
/// z-normalized data; this is the same construction re-centered on `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WordSpec {
    alphabet: usize,
    bits: u32,
    segs: usize,
    breakpoints: Vec<f64>,
}

impl WordSpec {
    /// Builds the spec for an alphabet of `alphabet` symbols over sketches
    /// of `paa_width` segments. The word packs `min(paa_width, 64/bits)`
    /// segments into one `u64`, segment 0 in the highest bits.
    ///
    /// # Panics
    /// Panics when `alphabet` is outside `2..=64` (callers validate via
    /// [`crate::OnexConfig::validate`]) or `paa_width` is 0.
    pub fn new(alphabet: usize, paa_width: usize) -> Self {
        assert!(
            (2..=64).contains(&alphabet),
            "sax alphabet {alphabet} outside 2..=64"
        );
        assert!(paa_width >= 1, "paa_width must be ≥ 1");
        let bits = usize::BITS - (alphabet - 1).leading_zeros();
        let segs = paa_width.min((64 / bits) as usize);
        let breakpoints = (1..alphabet)
            .map(|i| 0.5 + 0.25 * probit(i as f64 / alphabet as f64))
            .collect();
        WordSpec {
            alphabet,
            bits,
            segs,
            breakpoints,
        }
    }

    /// Alphabet size (symbols per segment).
    #[inline]
    pub fn alphabet(&self) -> usize {
        self.alphabet
    }

    /// Bits per symbol (`⌈log₂ alphabet⌉`).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Segments packed into the word (`min(paa_width, 64/bits)`).
    #[inline]
    pub fn segs(&self) -> usize {
        self.segs
    }

    /// The ascending breakpoint table (`alphabet − 1` values).
    #[inline]
    pub fn breakpoints(&self) -> &[f64] {
        &self.breakpoints
    }

    /// The symbol of one sketch value: the number of breakpoints ≤ `v`
    /// (so symbol `i` covers `[β_i, β_{i+1})`). NaN maps to symbol 0; the
    /// mapping is irrelevant for correctness — words only route candidates.
    #[inline]
    pub fn symbol(&self, v: f64) -> u64 {
        self.breakpoints.partition_point(|&b| b <= v) as u64
    }

    /// Discretizes the first [`Self::segs`] values of a sketch into a
    /// packed word, segment 0 in the highest `bits` of the used span.
    ///
    /// # Panics
    /// Panics when the sketch is narrower than [`Self::segs`].
    pub fn word_of(&self, sketch: &[f64]) -> u64 {
        assert!(
            sketch.len() >= self.segs,
            "sketch width {} below word segment count {}",
            sketch.len(),
            self.segs
        );
        let mut word = 0u64;
        for &v in &sketch[..self.segs] {
            word = (word << self.bits) | self.symbol(v);
        }
        word
    }

    /// The bit-plane-transposed sort key of a word: the MSBs of all
    /// symbols first, then the next bit-plane, … down to the LSBs. Its
    /// length-`segs·ℓ` prefix is exactly the level-ℓ iSAX word (top ℓ bits
    /// of every symbol), so sorting by this key makes every hierarchy
    /// bucket — at *every* level — a contiguous run. (Sorting by the raw
    /// packed word would not: masking low-order bits is not monotone in
    /// packed-word order.)
    pub fn hier_key(&self, word: u64) -> u64 {
        let mut key = 0u64;
        for plane in (0..self.bits).rev() {
            for j in 0..self.segs {
                let shift = self.bits * (self.segs - 1 - j) as u32 + plane;
                key = (key << 1) | ((word >> shift) & 1);
            }
        }
        key
    }

    /// Total key bits (`segs · bits`).
    #[inline]
    fn key_bits(&self) -> u32 {
        self.bits * self.segs as u32
    }

    /// The level-ℓ prefix of a hierarchy key (top `segs·ℓ` key bits).
    #[inline]
    fn key_prefix(&self, key: u64, level: u32) -> u64 {
        let drop = self.key_bits() - (self.segs as u32 * level).min(self.key_bits());
        if drop >= 64 {
            0
        } else {
            key >> drop
        }
    }

    /// Extracts the symbol of segment `j` from a packed word.
    #[inline]
    fn segment_symbol(&self, word: u64, j: usize) -> u64 {
        let shift = self.bits * (self.segs - 1 - j) as u32;
        (word >> shift) & ((1u64 << self.bits) - 1)
    }

    /// Heap bytes behind the spec.
    pub fn size_bytes(&self) -> usize {
        self.breakpoints.len() * std::mem::size_of::<f64>()
    }
}

/// Inverse standard-normal CDF (probit) via Acklam's rational
/// approximation — pure f64 arithmetic, deterministic, |rel err| < 1.2e-9
/// over (0, 1). Only breakpoint construction calls it (p = i/a, a ≤ 64),
/// never the query path.
fn probit(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e1,
        2.209460984245205e2,
        -2.759285104469687e2,
        1.38357751867269e2,
        -3.066479806614716e1,
        2.506628277459239e0,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e1,
        1.615858368580409e2,
        -1.556989798598866e2,
        6.680131188771972e1,
        -1.328068155288572e1,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-3,
        -3.223964580411365e-1,
        -2.400758277161838e0,
        -2.549732539343734e0,
        4.374664141464968e0,
        2.938163982698783e0,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-3,
        3.224671290700398e-1,
        2.445134137142996e0,
        3.754408661907416e0,
    ];
    const P_LOW: f64 = 0.02425;
    debug_assert!(p > 0.0 && p < 1.0, "probit domain is (0, 1)");
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

/// One bucket of the prefix hierarchy: a contiguous run of the sorted
/// group order, its level (how many bit-planes of every symbol are
/// fixed), and its children (contiguous in the node table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct Node {
    /// Start of the bucket's run in [`SymIndex::order`].
    start: u32,
    /// One past the end of the run.
    end: u32,
    /// Fixed bit-planes per symbol (0 = root, `bits` = exact word).
    level: u8,
    /// Index of the first child in the node table (children contiguous).
    first_child: u32,
    /// Number of children (0 = leaf).
    n_children: u32,
}

/// Outcome of one [`SymIndex::mark_skips`] walk, ready to fold into the
/// query counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProbeOutcome {
    /// Hierarchy buckets whose bound was evaluated.
    pub probes: usize,
    /// Groups inside certified (skipped) buckets.
    pub skipped: usize,
    /// Groups the index proposes to the cascade (total − skipped).
    pub candidates: usize,
}

/// A navigation view of one hierarchy bucket — the coarse-to-fine
/// drill-down surface (the interactive half of SAX Navigator / PSEUDo).
/// Obtained from [`SymIndex::root`] and refined via [`SymIndex::child`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NavNode {
    /// Internal node id (stable within one index build).
    pub id: usize,
    /// Fixed bit-planes per symbol (0 = root).
    pub level: u8,
    /// Number of groups under this bucket.
    pub group_count: usize,
    /// Number of child buckets (0 = leaf).
    pub child_count: usize,
    /// Per-segment lowest symbol still covered by the bucket.
    pub symbol_lo: Vec<u8>,
    /// Per-segment highest symbol still covered by the bucket.
    pub symbol_hi: Vec<u8>,
}

/// The per-length symbolic word index: group locals sorted by the
/// bit-plane-transposed word key, a path-compressed prefix hierarchy over
/// the sorted run, and per-bucket min/max envelopes of the member
/// representatives' PAA sketches (full sketch width, not just the word
/// segments — the envelopes are what certify skips; the words only shape
/// the tree).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymIndex {
    len: usize,
    width: usize,
    spec: WordSpec,
    all_finalized: bool,
    /// Packed rep word per group local (copied from the slab's word plane).
    words: Vec<u64>,
    order: Vec<u32>,
    nodes: Vec<Node>,
    env_lo: Vec<f64>,
    env_hi: Vec<f64>,
}

impl SymIndex {
    /// Builds the index for one slab — a deterministic pure function of
    /// the slab's rep word plane and rep sketch plane, so an incremental
    /// maintenance path can always be checked against this rebuild.
    pub fn build(slab: &LengthSlab) -> Self {
        let g = slab.group_count();
        let w = slab.paa_width();
        let spec = slab.word_spec().clone();
        let all_finalized = (0..g).all(|local| slab.is_finalized(local));
        let words: Vec<u64> = (0..g).map(|local| slab.rep_word(local)).collect();
        let keys: Vec<u64> = words.iter().map(|&wd| spec.hier_key(wd)).collect();
        let mut order: Vec<u32> = (0..g as u32).collect();
        order.sort_by_key(|&local| (keys[local as usize], local));
        let mut nodes = vec![Node {
            start: 0,
            end: g as u32,
            level: 0,
            first_child: 0,
            n_children: 0,
        }];
        split_node(0, &spec, &order, &keys, &mut nodes);
        let n = nodes.len();
        let mut env_lo = vec![f64::INFINITY; n * w];
        let mut env_hi = vec![f64::NEG_INFINITY; n * w];
        for (ni, node) in nodes.iter().enumerate() {
            let base = ni * w;
            for &local in &order[node.start as usize..node.end as usize] {
                let row = slab.paa_rep_row(local as usize);
                for (j, &v) in row.iter().enumerate() {
                    if v < env_lo[base + j] {
                        env_lo[base + j] = v;
                    }
                    if v > env_hi[base + j] {
                        env_hi[base + j] = v;
                    }
                }
            }
        }
        SymIndex {
            len: slab.subseq_len(),
            width: w,
            spec,
            all_finalized,
            words,
            order,
            nodes,
            env_lo,
            env_hi,
        }
    }

    /// The subsequence length this index covers.
    #[inline]
    pub fn subseq_len(&self) -> usize {
        self.len
    }

    /// The sketch width the bucket envelopes span.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The word derivation spec.
    #[inline]
    pub fn spec(&self) -> &WordSpec {
        &self.spec
    }

    /// Whether every group was finalized when the index was built — the
    /// precondition for certified skips (non-finalized groups have zeroed
    /// sketch rows, so their envelopes would not describe the real reps).
    #[inline]
    pub fn all_finalized(&self) -> bool {
        self.all_finalized
    }

    /// Number of groups indexed.
    #[inline]
    pub fn group_count(&self) -> usize {
        self.order.len()
    }

    // sound: a bucket is skipped only when `lb_paa_env_sq(proxy, q_hi, q_lo,
    // weights)` — the exact tier-0 kernel — exceeds `limit_sq`, the exact
    // tier-0 pruning limit. `proxy[j]` is the point of the bucket's rep-sketch
    // range `[blo_j, bhi_j]` nearest the query band `[q_lo_j, q_hi_j]`
    // (computed with exact min/max, no rounding), so per segment its Keogh
    // contribution is ≤ that of every member rep's sketch value; IEEE-754
    // subtraction, squaring of non-negatives, multiplication by the same
    // non-negative weight, and summation in the same kernel association are
    // all monotone, hence the bucket bound ≤ every member group's tier-0
    // bound bit-for-bit. bound > limit_sq therefore certifies that tier 0
    // would prune every group in the bucket with the same strictly-greater
    // comparison — skipping them changes no result and no cutoff trajectory.
    /// Walks the hierarchy and marks every group inside a certified bucket
    /// in `skip` (resized to the group count, reset to `false`). `q_hi` /
    /// `q_lo` / `weights` are the query's PAA envelope exactly as tier 0
    /// consumes it; `limit_sq` is tier 0's pruning limit
    /// (`cutoff² · (1 + PAA_TIER0_MARGIN)`). `proxy` is caller scratch.
    /// Returns probe/skip/candidate counts for the query counters.
    pub fn mark_skips(
        &self,
        q_hi: &[f64],
        q_lo: &[f64],
        weights: &[f64],
        limit_sq: f64,
        skip: &mut Vec<bool>,
        proxy: &mut Vec<f64>,
    ) -> ProbeOutcome {
        let g = self.order.len();
        skip.clear();
        skip.resize(g, false);
        let mut out = ProbeOutcome::default();
        if g == 0 || q_hi.len() != self.width || q_lo.len() != self.width {
            out.candidates = g;
            return out;
        }
        let w = self.width;
        let mut stack: Vec<u32> = vec![0];
        while let Some(ni) = stack.pop() {
            let node = self.nodes[ni as usize];
            if node.end == node.start {
                continue;
            }
            proxy.clear();
            let lo = &self.env_lo[ni as usize * w..(ni as usize + 1) * w];
            let hi = &self.env_hi[ni as usize * w..(ni as usize + 1) * w];
            for ((&l, &h), &ql) in lo.iter().zip(hi).zip(q_lo) {
                // Nearest point of [l, h] to the band [ql, q_hi_j].
                proxy.push(h.min(l.max(ql)));
            }
            out.probes += 1;
            let bound = lb_paa_env_sq(proxy, q_hi, q_lo, weights);
            if bound > limit_sq {
                // sound: see the function-level argument — the bound above
                // lower-bounds every member group's tier-0 bound, so the
                // strictly-greater test certifies each as tier-0 prunable.
                for &local in &self.order[node.start as usize..node.end as usize] {
                    skip[local as usize] = true;
                }
                out.skipped += (node.end - node.start) as usize;
            } else if node.n_children > 0 {
                for c in 0..node.n_children {
                    stack.push(node.first_child + c);
                }
            }
            // Finest non-certifiable bucket: its groups stay candidates.
        }
        out.candidates = g - out.skipped;
        out
    }

    /// The root navigation bucket (all groups, nothing fixed).
    pub fn root(&self) -> NavNode {
        self.nav_node(0)
    }

    /// Drills one level down: the `i`-th child bucket of `parent`, or
    /// `None` past the child count (or for a leaf).
    pub fn child(&self, parent: &NavNode, i: usize) -> Option<NavNode> {
        let node = self.nodes.get(parent.id)?;
        if i >= node.n_children as usize {
            return None;
        }
        Some(self.nav_node(node.first_child as usize + i))
    }

    /// The group locals under a navigation bucket, in word order.
    pub fn node_groups(&self, node: &NavNode) -> &[u32] {
        match self.nodes.get(node.id) {
            Some(n) => &self.order[n.start as usize..n.end as usize],
            None => &[],
        }
    }

    fn nav_node(&self, id: usize) -> NavNode {
        let node = self.nodes[id];
        let segs = self.spec.segs();
        let bits = self.spec.bits();
        let top = self.spec.alphabet() as u64 - 1;
        let mut symbol_lo = Vec::with_capacity(segs);
        let mut symbol_hi = Vec::with_capacity(segs);
        if node.end > node.start && node.level > 0 {
            // All groups in the bucket share the top `level` bits of every
            // symbol; read them off the first member's key prefix.
            let free = bits - u32::from(node.level);
            let mask_low = (1u64 << free) - 1;
            let first = self.order[node.start as usize];
            let word = self.words[first as usize];
            for j in 0..segs {
                let sym = self.spec.segment_symbol(word, j);
                let lo = sym & !mask_low;
                symbol_lo.push(lo as u8);
                symbol_hi.push((lo | mask_low).min(top) as u8);
            }
        } else {
            for _ in 0..segs {
                symbol_lo.push(0);
                symbol_hi.push(top as u8);
            }
        }
        NavNode {
            id,
            level: node.level,
            group_count: (node.end - node.start) as usize,
            child_count: node.n_children as usize,
            symbol_lo,
            symbol_hi,
        }
    }

    /// Bit-exact structural audit: rebuilds the index from the slab and
    /// compares every field (envelope planes by bit pattern). The runtime
    /// validator calls this per length.
    pub fn validate(&self, slab: &LengthSlab) -> Result<()> {
        let want = SymIndex::build(slab);
        let viol = |what: &str| {
            Err(OnexError::InvariantViolation(format!(
                "symbolic index for length {}: {what} differs from a fresh rebuild",
                self.len
            )))
        };
        if self.len != want.len || self.width != want.width {
            return viol("shape");
        }
        if self.spec != want.spec
            || self
                .spec
                .breakpoints
                .iter()
                .zip(&want.spec.breakpoints)
                .any(|(a, b)| a.to_bits() != b.to_bits())
        {
            return viol("word spec");
        }
        if self.all_finalized != want.all_finalized {
            return viol("finalization flag");
        }
        if self.words != want.words {
            return viol("word plane copy");
        }
        if self.order != want.order {
            return viol("group order");
        }
        if self.nodes != want.nodes {
            return viol("hierarchy");
        }
        let bits_ne = |a: &[f64], b: &[f64]| {
            a.len() != b.len() || a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits())
        };
        if bits_ne(&self.env_lo, &want.env_lo) || bits_ne(&self.env_hi, &want.env_hi) {
            return viol("bucket envelopes");
        }
        Ok(())
    }

    /// Heap bytes behind the probe structure (order, nodes, envelopes,
    /// breakpoints) — the in-memory index cost on top of the slab's word
    /// planes.
    pub fn size_bytes(&self) -> usize {
        self.order.len() * std::mem::size_of::<u32>()
            + self.words.len() * std::mem::size_of::<u64>()
            + self.nodes.len() * std::mem::size_of::<Node>()
            + (self.env_lo.len() + self.env_hi.len()) * std::mem::size_of::<f64>()
            + self.spec.size_bytes()
    }
}

/// Recursively splits `nodes[idx]` by the first deeper level at which its
/// key run diverges (path compression), appending children contiguously.
/// Depth is bounded by `spec.bits()` ≤ 6, so recursion is safe.
fn split_node(idx: usize, spec: &WordSpec, order: &[u32], keys: &[u64], nodes: &mut Vec<Node>) {
    let node = nodes[idx];
    let (s, e) = (node.start as usize, node.end as usize);
    if e - s <= 1 || u32::from(node.level) >= spec.bits() {
        return;
    }
    let key_at = |i: usize| keys[order[i] as usize];
    // Path compression: find the shallowest deeper level where the run's
    // first and last key prefixes differ (keys are sorted, so equal ends
    // mean an undivided run).
    let mut level = u32::from(node.level) + 1;
    while level <= spec.bits()
        && spec.key_prefix(key_at(s), level) == spec.key_prefix(key_at(e - 1), level)
    {
        level += 1;
    }
    if level > spec.bits() {
        return; // word-identical run — leaf
    }
    // Carve the run into children: maximal sub-runs of equal level prefix.
    let first_child = nodes.len() as u32;
    let mut run_start = s;
    let mut run_prefix = spec.key_prefix(key_at(s), level);
    let mut child_ranges: Vec<(usize, usize)> = Vec::new();
    for i in s + 1..e {
        let p = spec.key_prefix(key_at(i), level);
        if p != run_prefix {
            child_ranges.push((run_start, i));
            run_start = i;
            run_prefix = p;
        }
    }
    child_ranges.push((run_start, e));
    nodes[idx].first_child = first_child;
    nodes[idx].n_children = child_ranges.len() as u32;
    for &(cs, ce) in &child_ranges {
        nodes.push(Node {
            start: cs as u32,
            end: ce as u32,
            level: level as u8,
            first_child: 0,
            n_children: 0,
        });
    }
    for i in 0..child_ranges.len() {
        split_node(first_child as usize + i, spec, order, keys, nodes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::LengthSlab;
    use onex_ts::{Dataset, SubseqRef, TimeSeries};

    fn sketch_slab(rows: &[Vec<f64>], len: usize, w: usize, alphabet: usize) -> LengthSlab {
        // One singleton group per row: seeding with `len`-sample values
        // whose PAA equals the desired sketch (constant blocks of each
        // sketch value, so segment means reproduce the row exactly).
        let series: Vec<TimeSeries> = rows
            .iter()
            .map(|row| {
                let values: Vec<f64> = (0..len).map(|j| row[j * w / len.max(1)]).collect();
                TimeSeries::new(values).expect("non-empty series")
            })
            .collect();
        let dataset = Dataset::new("symindex-fixture", series);
        let mut slab = LengthSlab::new(len, w, alphabet);
        for i in 0..rows.len() {
            let r = SubseqRef::new(i as u32, 0, len as u32);
            let local = slab.seed(r, dataset.subseq_unchecked(r));
            slab.finalize(local, &dataset, 1);
        }
        slab
    }

    #[test]
    fn breakpoints_are_monotone_and_centered() {
        for a in [2usize, 3, 4, 8, 16, 64] {
            let spec = WordSpec::new(a, 8);
            let bp = spec.breakpoints();
            assert_eq!(bp.len(), a - 1);
            for pair in bp.windows(2) {
                assert!(pair[0] < pair[1], "breakpoints must ascend for a={a}");
            }
            if a % 2 == 0 {
                // Median breakpoint is the Gaussian mean, i.e. 1/2.
                assert!((bp[a / 2 - 1] - 0.5).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn probit_matches_known_quantiles() {
        assert!(probit(0.5).abs() < 1e-12);
        assert!((probit(0.975) - 1.959_963_984_540_054).abs() < 1e-6);
        assert!((probit(0.025) + 1.959_963_984_540_054).abs() < 1e-6);
        for p in [0.001, 0.01, 0.1, 0.3, 0.7, 0.99, 0.999] {
            assert!(
                (probit(p) + probit(1.0 - p)).abs() < 1e-7,
                "symmetry at {p}"
            );
        }
    }

    #[test]
    fn symbols_partition_the_axis() {
        let spec = WordSpec::new(4, 4);
        assert_eq!(spec.bits(), 2);
        assert_eq!(spec.segs(), 4);
        assert_eq!(spec.symbol(f64::NEG_INFINITY), 0);
        assert_eq!(spec.symbol(f64::INFINITY), 3);
        assert_eq!(spec.symbol(0.5), 2, "values at the median go right");
        let bp = spec.breakpoints().to_vec();
        for (i, &b) in bp.iter().enumerate() {
            assert_eq!(spec.symbol(b), i as u64 + 1, "breakpoint belongs right");
            assert_eq!(spec.symbol(b - 1e-9), i as u64);
        }
    }

    #[test]
    fn word_packs_segment_zero_highest() {
        let spec = WordSpec::new(4, 2);
        // symbols: 0.0 → 0, 1.0 → 3
        let w = spec.word_of(&[1.0, 0.0]);
        assert_eq!(w, 0b1100);
        assert_eq!(spec.segment_symbol(w, 0), 3);
        assert_eq!(spec.segment_symbol(w, 1), 0);
    }

    #[test]
    fn hier_key_prefixes_group_shared_high_bits() {
        let spec = WordSpec::new(4, 3);
        // Exhaustive over all 3-segment words: equal level-ℓ key prefixes
        // must coincide with equal top-ℓ bits of every symbol.
        let words: Vec<u64> = (0..64u64).collect();
        for &x in &words {
            for &y in &words {
                for level in 0..=spec.bits() {
                    let same_prefix = spec.key_prefix(spec.hier_key(x), level)
                        == spec.key_prefix(spec.hier_key(y), level);
                    let same_high = (0..spec.segs()).all(|j| {
                        let a = spec.segment_symbol(x, j) >> (spec.bits() - level).min(63);
                        let b = spec.segment_symbol(y, j) >> (spec.bits() - level).min(63);
                        level == 0 || a == b
                    });
                    assert_eq!(same_prefix, same_high, "x={x:#b} y={y:#b} level={level}");
                }
            }
        }
    }

    #[test]
    fn build_partitions_groups_and_nests_envelopes() {
        let rows: Vec<Vec<f64>> = (0..12)
            .map(|i| {
                (0..4)
                    .map(|j| ((i * 7 + j * 3) % 11) as f64 / 10.0)
                    .collect()
            })
            .collect();
        let slab = sketch_slab(&rows, 8, 4, 4);
        let idx = SymIndex::build(&slab);
        assert_eq!(idx.group_count(), 12);
        assert!(idx.all_finalized());
        // Children partition their parent's run exactly.
        for node in &idx.nodes {
            if node.n_children > 0 {
                let mut cursor = node.start;
                for c in 0..node.n_children {
                    let child = idx.nodes[(node.first_child + c) as usize];
                    assert_eq!(child.start, cursor);
                    assert!(u32::from(child.level) > u32::from(node.level));
                    cursor = child.end;
                }
                assert_eq!(cursor, node.end);
            }
        }
        // Every group's sketch lies inside every enclosing bucket envelope.
        let w = idx.width();
        for (ni, node) in idx.nodes.iter().enumerate() {
            for &local in &idx.order[node.start as usize..node.end as usize] {
                let row = slab.paa_rep_row(local as usize);
                for (j, &v) in row.iter().enumerate().take(w) {
                    assert!(idx.env_lo[ni * w + j] <= v);
                    assert!(idx.env_hi[ni * w + j] >= v);
                }
            }
        }
        idx.validate(&slab).unwrap();
    }

    #[test]
    fn mark_skips_only_certifies_tier0_prunable_groups() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                (0..4)
                    .map(|j| ((i * 13 + j * 5) % 17) as f64 / 16.0)
                    .collect()
            })
            .collect();
        let slab = sketch_slab(&rows, 8, 4, 4);
        let idx = SymIndex::build(&slab);
        let weights = vec![2.0; 4];
        let mut skip = Vec::new();
        let mut proxy = Vec::new();
        for (qc, limit) in [(0.1f64, 0.05f64), (0.5, 0.2), (0.9, 0.01), (0.4, 1.0)] {
            let q_hi = vec![qc + 0.05; 4];
            let q_lo = vec![qc - 0.05; 4];
            let out = idx.mark_skips(&q_hi, &q_lo, &weights, limit, &mut skip, &mut proxy);
            assert_eq!(out.skipped + out.candidates, 20);
            assert!(out.probes >= 1);
            for (local, &s) in skip.iter().enumerate() {
                let bound =
                    onex_dist::lb_paa_env_sq(slab.paa_rep_row(local), &q_hi, &q_lo, &weights);
                if s {
                    assert!(bound > limit, "skip of group {local} must be certified");
                }
            }
        }
    }

    #[test]
    fn navigation_drills_down_and_covers_all_groups() {
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|i| (0..4).map(|j| ((i + j) % 10) as f64 / 9.0).collect())
            .collect();
        let slab = sketch_slab(&rows, 8, 4, 4);
        let idx = SymIndex::build(&slab);
        let root = idx.root();
        assert_eq!(root.group_count, 10);
        assert_eq!(root.level, 0);
        assert_eq!(root.symbol_lo, vec![0; 4]);
        assert_eq!(root.symbol_hi, vec![3; 4]);
        let mut seen = 0usize;
        for i in 0..root.child_count {
            let child = idx.child(&root, i).unwrap();
            assert!(child.level > 0);
            seen += child.group_count;
            for (lo, hi) in child.symbol_lo.iter().zip(&child.symbol_hi) {
                assert!(lo <= hi);
            }
            for &local in idx.node_groups(&child) {
                let word = idx.spec().word_of(slab.paa_rep_row(local as usize));
                for j in 0..idx.spec().segs() {
                    let sym = idx.spec().segment_symbol(word, j) as u8;
                    assert!(child.symbol_lo[j] <= sym && sym <= child.symbol_hi[j]);
                }
            }
        }
        assert_eq!(seen, 10, "children partition the root");
        assert!(idx.child(&root, root.child_count).is_none());
    }

    #[test]
    fn validate_rejects_a_tampered_index() {
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..4).map(|j| ((i * 3 + j) % 7) as f64 / 6.0).collect())
            .collect();
        let slab = sketch_slab(&rows, 8, 4, 4);
        let mut idx = SymIndex::build(&slab);
        idx.validate(&slab).unwrap();
        idx.env_lo[0] += 1e-9;
        let err = idx.validate(&slab).unwrap_err();
        assert!(err.to_string().contains("bucket envelopes"), "{err}");
    }
}
