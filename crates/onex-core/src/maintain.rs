//! Incremental maintenance of an existing base (the paper defers this to its
//! tech report; the natural construction is implemented here): appending a
//! new series re-runs the Algorithm-1 assignment *only for the new series'
//! subsequences*, against the existing representatives — no re-clustering of
//! the data already indexed. Affected per-length indexes (Dc, sum order,
//! SP-Space) are rebuilt.
//!
//! Normalization caveat: when the base was built from raw data, the new
//! series is projected with the *original* min-max parameters. Values
//! outside the original range normalize outside `[0, 1]`; this mirrors
//! streaming practice (re-normalizing would invalidate every stored
//! distance) and is documented behaviour.

use crate::build::{Assigner, LengthGroups};
use crate::{BuildMode, Group, OnexBase, Result};
use onex_ts::TimeSeries;
use std::collections::BTreeMap;

/// Appends a series (raw units if the base was built from raw data) and
/// returns the updated base together with the new series' index.
pub fn append_series(base: OnexBase, series: TimeSeries) -> Result<(OnexBase, usize)> {
    base.ensure_nonempty()?;
    let config = *base.config();
    let norm = base.normalizer().copied();
    let (mut dataset, _, _, groups, length_map) = base.into_parts();

    // Project into the base's value space.
    let series = match &norm {
        Some(p) => {
            let values: Vec<f64> = series.values().iter().map(|&v| p.apply(v)).collect();
            match series.label() {
                Some(l) => TimeSeries::with_label(values, l)?,
                None => TimeSeries::new(values)?,
            }
        }
        None => series,
    };
    let new_index = dataset.push(series);

    // Re-distribute the flat group table into per-length buckets, preserving
    // the id order recorded in each LengthIndex.
    let mut slots: Vec<Option<Group>> = groups.into_iter().map(Some).collect();
    let mut per_length: BTreeMap<usize, Vec<Group>> = BTreeMap::new();
    for (len, idx) in &length_map {
        let bucket: Vec<Group> = idx
            .group_ids
            .iter()
            .map(|&id| slots[id as usize].take().expect("group id unique"))
            .collect();
        per_length.insert(*len, bucket);
    }

    // Assign the new series' subsequences length by length. Lengths the base
    // has never seen (the new series may be longer than any existing one)
    // start from an empty assigner.
    let new_len = dataset.get(new_index)?.len();
    let mut rebuilt: Vec<LengthGroups> = Vec::new();
    let mut touched: BTreeMap<usize, bool> = BTreeMap::new();
    for len in config.decomposition.lengths_for(new_len) {
        touched.insert(len, true);
    }
    let all_lengths: std::collections::BTreeSet<usize> = per_length
        .keys()
        .copied()
        .chain(touched.keys().copied())
        .collect();

    for len in all_lengths {
        let existing = per_length.remove(&len).unwrap_or_default();
        if !touched.contains_key(&len) {
            // Untouched length: groups pass through unchanged (already
            // finalized).
            rebuilt.push(LengthGroups {
                len,
                groups: existing,
            });
            continue;
        }
        let mut asg = Assigner::with_groups(len, config.st, existing);
        let start_max = new_len - len;
        let mut start = 0usize;
        while start <= start_max {
            let r = onex_ts::SubseqRef::new(new_index as u32, start as u32, len as u32);
            asg.assign(&dataset, r);
            start += config.decomposition.start_stride;
        }
        if config.build_mode == BuildMode::Strict {
            asg.enforce_invariant(&dataset);
        }
        let radius = config.window.resolve(len, len);
        let mut groups = asg.groups;
        for g in groups.iter_mut() {
            g.finalize(&dataset, radius);
        }
        rebuilt.push(LengthGroups { len, groups });
    }
    rebuilt.sort_by_key(|lg| lg.len);
    Ok((
        OnexBase::assemble(dataset, norm, config, rebuilt),
        new_index,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Explorer, QueryOptions};
    use crate::{MatchMode, OnexConfig};
    use onex_ts::synth;

    #[test]
    fn appended_series_is_queryable() {
        let d = synth::sine_mix(5, 12, 2, 7);
        let base = OnexBase::build(&d, OnexConfig::default()).unwrap();
        let before = base.stats();
        // a brand-new, distinctive series (raw units)
        let novel = TimeSeries::new(vec![
            10.0, 0.0, 10.0, 0.0, 10.0, 0.0, 10.0, 0.0, 10.0, 0.0, 10.0, 0.0,
        ])
        .unwrap();
        let (base, idx) = append_series(base, novel).unwrap();
        assert_eq!(idx, 5);
        let after = base.stats();
        assert_eq!(
            after.subsequences,
            before.subsequences + 12 * 11 / 2,
            "new series contributes n(n−1)/2 subsequences"
        );
        // query with a normalized slice of the new series finds it
        let q: Vec<f64> = base.dataset().get(5).unwrap().values()[0..6].to_vec();
        let explorer = Explorer::from_base(base);
        let m = explorer
            .best_match(&q, MatchMode::Exact(6), QueryOptions::default())
            .unwrap();
        assert_eq!(m.subseq.series, 5);
    }

    #[test]
    fn longer_series_creates_new_lengths() {
        let d = synth::sine_mix(4, 8, 2, 7);
        let base = OnexBase::build(&d, OnexConfig::default()).unwrap();
        assert_eq!(base.indexed_lengths().max().unwrap(), 8);
        let long = TimeSeries::new((0..12).map(|i| i as f64 * 0.1).collect()).unwrap();
        let (base, _) = append_series(base, long).unwrap();
        assert_eq!(base.indexed_lengths().max().unwrap(), 12);
        base.length_index(12).expect("new length indexed");
    }

    #[test]
    fn strict_invariant_survives_maintenance() {
        let d = synth::sine_mix(5, 10, 2, 9);
        let base = OnexBase::build(&d, OnexConfig::default()).unwrap();
        let extra = TimeSeries::new((0..10).map(|i| (i as f64 * 0.7).sin()).collect()).unwrap();
        let (base, _) = append_series(base, extra).unwrap();
        let st = base.config().st;
        for g in base.groups() {
            for &(m, _) in g.members() {
                let d = onex_dist::ed_normalized(
                    base.dataset().subseq_unchecked(m),
                    g.representative(),
                );
                assert!(d <= st / 2.0 + 1e-9);
            }
        }
    }
}
