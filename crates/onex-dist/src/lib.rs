//! # onex-dist — similarity distance kernels for ONEX
//!
//! Implements every distance the paper defines or leans on, with the exact
//! conventions of its Definitions 2–6:
//!
//! * [`ed()`](ed::ed) — Euclidean distance (Def. 2), its normalized form `ED/√n`
//!   (Def. 5), squared and early-abandoning variants used in the ONEX-base
//!   construction hot loop.
//! * [`dtw()`](dtw::dtw) — Dynamic Time Warping with the paper's *path-weight* objective
//!   (Def. 3: the weight of a warping path is `√(Σ w²)` and DTW is the
//!   minimum weight), its normalized form `DTW/2n` (Def. 6), Sakoe-Chiba
//!   banded and early-abandoning variants, and warping-path extraction.
//! * [`envelope`] — upper/lower warping envelopes (Lemire's O(n) streaming
//!   min/max), the ingredient of LB_Keogh.
//! * [`lb`] — the cascading lower bounds of the UCR suite: LB_Kim(FL) and
//!   LB_Keogh in both query/data roles, plus the cumulative variant that
//!   powers reordered early abandoning.
//! * [`paa()`](paa::paa) — Piecewise Aggregate Approximation and PDTW (Keogh & Pazzani
//!   2000), the paper's "PAA" baseline — plus the exact O(m) PAA lower
//!   bounds ([`paa::lb_paa`] on ED, [`paa::lb_paa_env_sq`] on LB_Keogh and
//!   therefore banded DTW) behind the ONEX cascade's sketch tier.
//! * [`kernels`] — the shared `chunks_exact(4)`-blocked inner loops
//!   (autovectorization-friendly) the hot kernels above are built on.
//! * [`lcss`] / [`erp`] — the related-work elastic measures (LCSS,
//!   Edit distance with Real Penalty), provided for the extension surface.
//!
//! ## Windows
//!
//! Every DTW-family kernel takes a [`Window`]: `Unconstrained` (the paper's
//! theory), an absolute Sakoe-Chiba band, or a length-relative band. For
//! sequences of different lengths the effective band is widened to at least
//! `|n − m|`, without which no monotone path exists.
//!
//! Inputs are expected to be finite (guaranteed by `onex-ts` validation);
//! kernels are panic-free for any finite input, including empty slices where
//! a distance is meaningful.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dtw;
pub mod ed;
pub mod envelope;
pub mod erp;
pub mod kernels;
pub mod lb;
pub mod lcss;
pub mod lp;
pub mod paa;
mod window;

pub use dtw::{dtw, dtw_early_abandon, dtw_normalized, dtw_with_path, DtwBuffer};
pub use ed::{ed, ed_early_abandon_sq, ed_normalized, ed_sq};
pub use envelope::{Envelope, EnvelopeRef};
pub use lb::{
    lb_keogh, lb_keogh_cumulative, lb_keogh_cumulative_into, lb_keogh_sq_abandon, lb_kim_fl,
};
pub use paa::{
    lb_paa, lb_paa_env_sq, lb_paa_sq, paa, paa_envelope_into, paa_extend, paa_into,
    paa_segment_weights, pdtw, Paa,
};
pub use window::Window;
