//! The Trillion baseline: a Rust reimplementation of the UCR suite
//! (Rakthanmanon et al. 2012, the paper's reference [22]) — *exact* DTW
//! best-match search over all windows of the **same length as the query**,
//! made fast by a cascade of increasingly expensive filters:
//!
//! 1. **LB_Kim (first/last)** — O(1) per window.
//! 2. **LB_Keogh EQ** (candidate against the *query's* envelope) with
//!    reordered early abandoning: indices sorted by the query's deviation
//!    from its mean, the suite's sort-by-|z| heuristic.
//! 3. **LB_Keogh EC** (query against the *candidate's* envelope, the
//!    "reversed roles" bound), built just-in-time per surviving window.
//! 4. **Early-abandoning DTW** seeded with the LB_Keogh EQ suffix bound
//!    (the suite's cascading use of the bound inside the DTW matrix).
//!
//! ## Normalization — the crux of the paper's accuracy comparison
//!
//! The original UCR suite **z-normalizes the query and every window**
//! before comparing (its README calls anything else "garbage"). The paper
//! instead evaluates all systems on dataset-level *min-max* normalized
//! data (§6.1) and measures solution quality there. With `znorm = true`
//! (default, faithful to the downloaded UCRsuite code the paper ran)
//! this implementation searches in z-space and is exact *in z-space*; the
//! returned match's distance is then recomputed in the min-max space, which
//! is exactly why Trillion's accuracy drops for queries that do not occur
//! verbatim in the dataset (Tables 2–3): a window with the same *shape* but
//! different level/amplitude is optimal in z-space yet far in value space.
//! Set `znorm = false` for a pure min-max-space exact search (used by tests
//! and ablations).

use crate::BaselineMatch;
use onex_dist::{lb_keogh_cumulative, lb_keogh_sq_abandon, lb_kim_fl, DtwBuffer, Envelope, Window};
use onex_ts::{Dataset, SubseqRef};

/// Pruning statistics for one query (exposed for the ablation experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrillionStats {
    /// Candidate windows visited.
    pub windows: usize,
    /// Windows eliminated by LB_Kim.
    pub pruned_kim: usize,
    /// Windows eliminated by LB_Keogh (query envelope).
    pub pruned_keogh_eq: usize,
    /// Windows eliminated by LB_Keogh (candidate envelope).
    pub pruned_keogh_ec: usize,
    /// Windows that reached full/early-abandoned DTW.
    pub dtw_evals: usize,
}

/// UCR-suite-style exact same-length search.
pub struct Trillion<'a> {
    dataset: &'a Dataset,
    window: Window,
    /// Per-window z-normalization, as in the original suite (see module
    /// docs). Default `true`.
    pub znorm: bool,
    /// Disable the LB cascade entirely (ablation: early abandoning only).
    pub use_lower_bounds: bool,
    /// Statistics from the most recent query.
    pub stats: TrillionStats,
    buf: DtwBuffer,
}

impl<'a> Trillion<'a> {
    /// Creates a searcher over `dataset` computing DTW under `window`.
    pub fn new(dataset: &'a Dataset, window: Window) -> Self {
        Trillion {
            dataset,
            window,
            znorm: true,
            use_lower_bounds: true,
            stats: TrillionStats::default(),
            buf: DtwBuffer::new(),
        }
    }

    /// Exact best match among all windows of the query's length (exact in
    /// z-space when `znorm` is set; see module docs). The returned
    /// [`BaselineMatch`] always carries the DTW in the *original* value
    /// space so it is comparable across systems. Returns `None` when no
    /// series is long enough.
    pub fn best_match(&mut self, q: &[f64]) -> Option<BaselineMatch> {
        self.stats = TrillionStats::default();
        let len = q.len();
        if len == 0 {
            return None;
        }
        let q_search: Vec<f64> = if self.znorm {
            z_normalize(q)
        } else {
            q.to_vec()
        };
        let r = self.window.resolve(len, len);
        // Envelope around the (search-space) query and the reordering
        // heuristic: largest |deviation from the query mean| first.
        let q_env = Envelope::build(&q_search, r);
        let q_mean = q_search.iter().sum::<f64>() / len as f64;
        let mut order: Vec<usize> = (0..len).collect();
        order.sort_by(|&a, &b| {
            let da = (q_search[a] - q_mean).abs();
            let db = (q_search[b] - q_mean).abs();
            db.total_cmp(&da)
        });

        let mut bsf = f64::INFINITY; // best-so-far in search space
        let mut best: Option<SubseqRef> = None;
        let mut zbuf: Vec<f64> = Vec::with_capacity(len);

        for (sid, ts) in self.dataset.series().iter().enumerate() {
            if ts.len() < len {
                continue;
            }
            let values = ts.values();
            // Running sums for O(1) per-window mean/variance (the suite's
            // streaming z-normalization).
            let mut sum = 0.0;
            let mut sum_sq = 0.0;
            for &v in &values[..len] {
                sum += v;
                sum_sq += v * v;
            }
            for start in 0..=(ts.len() - len) {
                if start > 0 {
                    let out = values[start - 1];
                    let inn = values[start + len - 1];
                    sum += inn - out;
                    sum_sq += inn * inn - out * out;
                }
                let raw_cand = &values[start..start + len];
                let cand: &[f64] = if self.znorm {
                    let mean = sum / len as f64;
                    let var = (sum_sq / len as f64 - mean * mean).max(0.0);
                    let inv_sd = if var < 1e-24 { 0.0 } else { 1.0 / var.sqrt() };
                    zbuf.clear();
                    zbuf.extend(raw_cand.iter().map(|&v| (v - mean) * inv_sd));
                    &zbuf
                } else {
                    raw_cand
                };
                self.stats.windows += 1;
                if self.use_lower_bounds && bsf.is_finite() {
                    // 1. LB_Kim: O(1).
                    if lb_kim_fl(&q_search, cand) >= bsf {
                        self.stats.pruned_kim += 1;
                        continue;
                    }
                    let bsf_sq = bsf * bsf;
                    // 2. LB_Keogh EQ, reordered, early-abandoning.
                    let eq = match lb_keogh_sq_abandon(cand, &q_env, Some(&order), bsf_sq) {
                        Some(v) => v,
                        None => {
                            self.stats.pruned_keogh_eq += 1;
                            continue;
                        }
                    };
                    if eq >= bsf_sq {
                        self.stats.pruned_keogh_eq += 1;
                        continue;
                    }
                    // 3. LB_Keogh EC: envelope around the candidate,
                    // built just-in-time (as the suite does).
                    let c_env = Envelope::build(cand, r);
                    match lb_keogh_sq_abandon(&q_search, &c_env, Some(&order), bsf_sq) {
                        Some(ec) if ec < bsf_sq => {}
                        _ => {
                            self.stats.pruned_keogh_ec += 1;
                            continue;
                        }
                    }
                }
                // 4. DTW with the EQ suffix bound for in-matrix abandoning.
                self.stats.dtw_evals += 1;
                let d = if self.use_lower_bounds {
                    let suffix = lb_keogh_cumulative(cand, &q_env);
                    self.buf.dist_early_abandon_with_suffix(
                        cand,
                        &q_search,
                        self.window,
                        bsf,
                        &suffix,
                    )
                } else {
                    self.buf
                        .dist_early_abandon(cand, &q_search, self.window, bsf)
                };
                if let Some(d) = d {
                    if d < bsf {
                        bsf = d;
                        best = Some(SubseqRef::new(sid as u32, start as u32, len as u32));
                    }
                }
            }
        }
        let r = best?;
        // Report the distance in the original (min-max) value space, the
        // space the paper's accuracy metric lives in.
        let original = self
            .buf
            .dist(q, self.dataset.subseq_unchecked(r), self.window);
        Some(BaselineMatch::new(r, original, len))
    }
}

/// Z-normalizes a query (population σ; constant sequences map to zeros).
fn z_normalize(xs: &[f64]) -> Vec<f64> {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs
        .iter()
        .map(|&x| {
            let d = x - mean;
            d * d
        })
        .sum::<f64>()
        / n;
    if var < 1e-24 {
        return vec![0.0; xs.len()];
    }
    let inv = 1.0 / var.sqrt();
    xs.iter().map(|&x| (x - mean) * inv).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use onex_dist::dtw;
    use onex_ts::synth;
    use onex_ts::Decomposition;

    fn data() -> Dataset {
        synth::sine_mix(6, 24, 2, 23)
    }

    fn minmax_trillion(d: &Dataset, w: Window) -> Trillion<'_> {
        let mut t = Trillion::new(d, w);
        t.znorm = false;
        t
    }

    #[test]
    fn exact_agrees_with_brute_force_in_minmax_space() {
        let d = data();
        for (series, lo, hi) in [(0usize, 2usize, 12usize), (3, 5, 17), (5, 0, 24)] {
            let q: Vec<f64> = d.get(series).unwrap().values()[lo..hi].to_vec();
            let mut t = minmax_trillion(&d, Window::Ratio(0.1));
            let m = t.best_match(&q).unwrap();
            let mut bf =
                crate::BruteForce::new(&d, Window::Ratio(0.1), Decomposition::full(), false);
            let b = bf.best_match_same_length(&q).unwrap();
            assert!(
                (m.raw_dtw - b.raw_dtw).abs() < 1e-9,
                "trillion {} vs brute {}",
                m.raw_dtw,
                b.raw_dtw
            );
        }
    }

    #[test]
    fn lower_bounds_do_not_change_the_answer() {
        let d = data();
        let q: Vec<f64> = d.get(1).unwrap().values()[3..15].to_vec();
        for znorm in [false, true] {
            let mut with_lb = Trillion::new(&d, Window::Ratio(0.1));
            with_lb.znorm = znorm;
            let a = with_lb.best_match(&q).unwrap();
            let mut without = Trillion::new(&d, Window::Ratio(0.1));
            without.znorm = znorm;
            without.use_lower_bounds = false;
            let b = without.best_match(&q).unwrap();
            assert!(
                (a.raw_dtw - b.raw_dtw).abs() < 1e-9,
                "znorm={znorm}: {} vs {}",
                a.raw_dtw,
                b.raw_dtw
            );
        }
    }

    #[test]
    fn pruning_actually_fires() {
        let d = synth::sine_mix(10, 32, 2, 29);
        let q: Vec<f64> = d.get(0).unwrap().values()[0..16].to_vec();
        let mut t = Trillion::new(&d, Window::Ratio(0.1));
        let _ = t.best_match(&q).unwrap();
        let pruned = t.stats.pruned_kim + t.stats.pruned_keogh_eq + t.stats.pruned_keogh_ec;
        assert!(pruned > 0, "cascade should prune something: {:?}", t.stats);
        assert!(t.stats.dtw_evals < t.stats.windows);
    }

    #[test]
    fn in_dataset_query_found_exactly_under_znorm() {
        // An exact occurrence has z-space distance 0 AND min-max distance 0,
        // so even the z-normalized search reports it perfectly.
        let d = data();
        let q: Vec<f64> = d.get(4).unwrap().values()[6..18].to_vec();
        let mut t = Trillion::new(&d, Window::Ratio(0.1));
        assert!(t.znorm, "faithful default");
        let m = t.best_match(&q).unwrap();
        assert!(m.raw_dtw < 1e-9);
        assert_eq!(m.subseq.len, 12);
    }

    #[test]
    fn znorm_is_amplitude_blind_minmax_is_not() {
        // Two flat series at levels 0.2 and 0.9, plus one ramp. A ramp query
        // at low level: z-space prefers the other *ramp* (same shape, any
        // level); min-max space prefers whatever is closest in value.
        let d = Dataset::new(
            "shapes",
            vec![
                onex_ts::TimeSeries::new(vec![0.2; 12]).unwrap(),
                onex_ts::TimeSeries::new((0..12).map(|i| 0.7 + 0.02 * i as f64).collect()).unwrap(),
            ],
        );
        // query: a ramp near 0.2 — shape matches series 1, values match 0.
        let q: Vec<f64> = (0..8).map(|i| 0.18 + 0.02 * i as f64).collect();
        let mut z = Trillion::new(&d, Window::Unconstrained);
        let zm = z.best_match(&q).unwrap();
        assert_eq!(zm.subseq.series, 1, "z-space picks the matching shape");
        let mut mm = minmax_trillion(&d, Window::Unconstrained);
        let mmm = mm.best_match(&q).unwrap();
        assert_eq!(mmm.subseq.series, 0, "min-max space picks the close values");
        // And the z-space pick is worse in min-max space — the accuracy gap.
        assert!(zm.raw_dtw > mmm.raw_dtw);
    }

    #[test]
    fn too_long_query_returns_none() {
        let d = data();
        let q = vec![0.5; 100];
        let mut t = Trillion::new(&d, Window::Ratio(0.1));
        assert!(t.best_match(&q).is_none());
        assert!(t.best_match(&[]).is_none());
    }

    #[test]
    fn unconstrained_window_also_exact() {
        let d = synth::sine_mix(4, 16, 2, 31);
        let q: Vec<f64> = d.get(2).unwrap().values()[1..9].to_vec();
        let mut t = minmax_trillion(&d, Window::Unconstrained);
        let m = t.best_match(&q).unwrap();
        // verify against direct scan
        let mut best = f64::INFINITY;
        for ts in d.series() {
            for start in 0..=(ts.len() - 8) {
                let c = &ts.values()[start..start + 8];
                best = best.min(dtw(&q, c, Window::Unconstrained));
            }
        }
        assert!((m.raw_dtw - best).abs() < 1e-9);
    }

    #[test]
    fn constant_windows_are_handled() {
        // Zero-variance windows z-normalize to all-zeros (the suite's
        // convention); a constant query does too, so they match at z-space
        // distance 0 and the reported min-max distance is the value gap.
        let d = Dataset::new(
            "flat",
            vec![
                onex_ts::TimeSeries::new(vec![0.8; 10]).unwrap(),
                onex_ts::TimeSeries::new((0..10).map(|i| i as f64 * 0.1).collect()).unwrap(),
            ],
        );
        let q = vec![0.8, 0.8, 0.8, 0.8];
        let mut t = Trillion::new(&d, Window::Ratio(0.1));
        let m = t.best_match(&q).unwrap();
        // exact-value flat window exists: min-max distance 0
        assert!(m.raw_dtw < 1e-9);
        assert_eq!(m.subseq.series, 0);
    }

    #[test]
    fn stats_account_for_every_window() {
        let d = data();
        let q: Vec<f64> = d.get(0).unwrap().values()[0..12].to_vec();
        let mut t = Trillion::new(&d, Window::Ratio(0.1));
        let _ = t.best_match(&q).unwrap();
        let windows_expected: usize = d
            .series()
            .iter()
            .filter(|ts| ts.len() >= 12)
            .map(|ts| ts.len() - 12 + 1)
            .sum();
        assert_eq!(t.stats.windows, windows_expected);
        // every window is either pruned somewhere or DTW-evaluated
        let accounted = t.stats.pruned_kim
            + t.stats.pruned_keogh_eq
            + t.stats.pruned_keogh_ec
            + t.stats.dtw_evals;
        assert_eq!(accounted, t.stats.windows);
    }

    #[test]
    fn streaming_znorm_matches_batch() {
        // The rolling-sum z-normalization must agree with a straightforward
        // per-window computation; verify via the chosen matches over a walk.
        let d = synth::random_walk(3, 40, 5);
        let q: Vec<f64> = d.get(0).unwrap().values()[10..26].to_vec();
        let mut t = Trillion::new(&d, Window::Ratio(0.1));
        let fast = t.best_match(&q).unwrap();
        // naive z-space scan
        let qz = super::z_normalize(&q);
        let mut best = (f64::INFINITY, SubseqRef::new(0, 0, 16));
        for (sid, ts) in d.series().iter().enumerate() {
            for start in 0..=(ts.len() - 16) {
                let w = super::z_normalize(&ts.values()[start..start + 16]);
                let dist = dtw(&qz, &w, Window::Ratio(0.1));
                if dist < best.0 {
                    best = (dist, SubseqRef::new(sid as u32, start as u32, 16));
                }
            }
        }
        assert_eq!(fast.subseq, best.1);
    }
}
