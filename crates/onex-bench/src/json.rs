//! A minimal JSON value, writer, and reader for the perf-baseline files.
//!
//! The build environment vendors its dependency stubs, so instead of
//! `serde_json` the bench crate carries this ~150-line subset: enough to
//! emit the `BENCH_*.json` perf baselines deterministically and to read
//! them back for the CI regression check. Covers the full JSON grammar we
//! produce (objects, arrays, strings with standard escapes, finite
//! numbers, booleans, null); not a general-purpose parser.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// A number from any integer-ish count.
    pub fn num(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// A string value.
    pub fn str(s: &str) -> Json {
        Json::Str(s.to_string())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// stable output for files kept under version control.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the subset described in the module docs).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unknown escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Re-sync on UTF-8 boundaries: push the whole code point.
                let start = *pos - 1;
                let mut end = *pos;
                while end < bytes.len() && (bytes[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                let s = std::str::from_utf8(&bytes[start..end])
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_baseline_shape() {
        let doc = Json::obj(vec![
            ("version", Json::num(1)),
            ("scale", Json::Num(0.05)),
            ("name", Json::str("best_match \"any\"\n")),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
            (
                "datasets",
                Json::Arr(vec![Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("nil", Json::Null),
                    ("evals", Json::num(12345)),
                    ("rate", Json::Num(0.4375)),
                ])]),
            ),
        ]);
        let text = doc.render();
        let back = Json::parse(&text).unwrap();
        assert_eq!(doc, back);
        // integers render without a decimal point
        assert!(text.contains("\"evals\": 12345"));
    }

    #[test]
    fn accessors_walk_nested_documents() {
        let text = r#"{"a": {"b": [1, 2.5, "x"]}, "µ": "done"}"#;
        let doc = Json::parse(text).unwrap();
        let arr = doc.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x"));
        assert_eq!(doc.get("µ").unwrap().as_str(), Some("done"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }
}
