//! **Table 4** — the compactness of the ONEX base at ST = 0.2: number of
//! representatives, total number of subsequences covered, and index size in
//! MB, per dataset.
//!
//! Paper values (full-scale datasets): ItalyPower 1228 reps / 18,492
//! subseqs / 1.14 MB … Symbols 3424 / 78,607,985 / 1210.32 MB. At reduced
//! scale the *reduction factor* (subsequences per representative) is the
//! shape to compare.

use super::Ctx;
use crate::harness::{self, build_timed};
use onex_ts::synth::PaperDataset;

/// Paper Table 4: (representatives, subsequences, MB).
pub const PAPER: [(usize, usize, f64); 6] = [
    (1228, 18_492, 1.14),
    (3532, 931_200, 21.53),
    (4896, 4_768_400, 86.75),
    (3489, 11_476_000, 183.02),
    (3424, 78_607_985, 1210.32),
    (3961, 33_024_000, 513.41),
];

/// Runs the experiment and prints measured vs paper values.
pub fn run(ctx: &Ctx) {
    println!(
        "\n== Table 4: ONEX base compactness at ST = 0.2 (scale {}) ==\n",
        ctx.scale
    );
    let widths = [12, 8, 12, 9, 11, 12, 14, 11];
    let mut table = harness::Table::new(
        "table4_compactness",
        &[
            "dataset",
            "reps",
            "subseqs",
            "MB",
            "reduction",
            "paper reps",
            "paper subseqs",
            "paper MB",
        ],
        &widths,
    );
    for (i, ds) in PaperDataset::EVALUATION.into_iter().enumerate() {
        let data = ds.generate_scaled(ctx.scale, ctx.seed);
        let (base, _) = build_timed(&data, ctx.config());
        let s = base.stats();
        let (pr, ps, pm) = PAPER[i];
        table.row(vec![
            ds.name().to_string(),
            format!("{}", s.representatives),
            format!("{}", s.subsequences),
            format!("{:.2}", s.total_mb()),
            format!("{:.0}×", s.reduction_factor()),
            format!("{pr}"),
            format!("{ps}"),
            format!("{pm:.2}"),
        ]);
    }
    table.finish(ctx.csv());
    println!("\n(paper columns are full-scale; compare the reduction factors, not absolutes.)");
}
