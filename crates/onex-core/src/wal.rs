//! Write-ahead journal for live maintenance: crash-safe durability for the
//! mutations a snapshot cannot capture.
//!
//! A snapshot is a full checkpoint; everything that happens between
//! checkpoints — [`crate::Explorer::append_series`],
//! [`crate::Explorer::remove_series`], [`crate::Explorer::refine_to`] — is
//! journaled here as one CRC-framed record per operation in a **sidecar
//! log** next to the snapshot file (`<snapshot>.wal`, see
//! [`sidecar_path`]). The record is appended and fsynced *before* the
//! successor base is hot-swapped in, so a crash at any instant loses at
//! most an operation the caller never saw succeed.
//!
//! ## File format
//!
//! ```text
//! header:  b"OWAL" version:u8(=1)
//! record:  len:u32  payload  crc32(payload):u32     (all LE)
//! payload: epoch:u64 op:u8 body
//!   op 1 append-series: label?:u8 [label:i32] count:u32 values:f64×count
//!   op 2 remove-series: index:u64
//!   op 3 refine-to:     st:f64
//! ```
//!
//! `epoch` is the epoch the operation **produces** (base epoch + 1), which
//! makes replay idempotent: records at or below the recovered base's epoch
//! are skipped, the next record must produce exactly `epoch + 1`, and any
//! gap is corruption.
//!
//! ## Torn tails
//!
//! Appends can be interrupted by a crash, so a truncated or CRC-failing
//! **final** record is expected damage: replay drops it and reports how
//! many bytes were cut — never an error. Damage *before* the final record
//! cannot come from an append crash and is rejected as
//! [`OnexError::SnapshotCorrupt`]. Everything recovered must then pass
//! [`OnexBase::validate_invariants`] before it is served.

use crate::snapshot::crc32;
use crate::{maintain, refine, OnexBase, OnexError, Result};
use onex_ts::TimeSeries;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File magic + format version.
const MAGIC: &[u8; 4] = b"OWAL";
const VERSION: u8 = 1;
const HEADER_LEN: usize = 5;
/// Per-record framing overhead: length prefix + CRC-32 suffix.
const FRAME_OVERHEAD: usize = 8;

const OP_APPEND: u8 = 1;
const OP_REMOVE: u8 = 2;
const OP_REFINE: u8 = 3;

/// The sidecar journal path for a snapshot at `path`: the same file name
/// with `.wal` appended (`base.onex` → `base.onex.wal`), so the pair
/// travels together.
pub fn sidecar_path(path: impl AsRef<Path>) -> PathBuf {
    let path = path.as_ref();
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".wal");
    path.with_file_name(name)
}

/// One journaled maintenance operation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalOp {
    /// [`crate::Explorer::append_series`], with the caller's raw series
    /// (normalization is re-applied on replay, so replay equals the live
    /// path bit for bit).
    Append(TimeSeries),
    /// [`crate::Explorer::remove_series`].
    Remove(usize),
    /// [`crate::Explorer::refine_to`].
    Refine(f64),
}

/// Encodes one framed record: `len payload crc`, where the payload stamps
/// the epoch the operation produces.
pub(crate) fn encode_record(op: &WalOp, epoch: u64) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&epoch.to_le_bytes());
    match op {
        WalOp::Append(series) => {
            payload.push(OP_APPEND);
            match series.label() {
                Some(label) => {
                    payload.push(1);
                    payload.extend_from_slice(&label.to_le_bytes());
                }
                None => payload.push(0),
            }
            payload.extend_from_slice(&(series.len() as u32).to_le_bytes());
            for &v in series.values() {
                payload.extend_from_slice(&v.to_le_bytes());
            }
        }
        WalOp::Remove(index) => {
            payload.push(OP_REMOVE);
            payload.extend_from_slice(&(*index as u64).to_le_bytes());
        }
        WalOp::Refine(st) => {
            payload.push(OP_REFINE);
            payload.extend_from_slice(&st.to_le_bytes());
        }
    }
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    let crc = crc32(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn decode_payload(payload: &[u8], at: usize) -> Result<(u64, WalOp)> {
    let corrupt =
        |what: &str| OnexError::SnapshotCorrupt(format!("wal record at byte {at}: {what}"));
    let epoch_bytes: [u8; 8] = payload
        .get(..8)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| corrupt("payload shorter than its epoch stamp"))?;
    let epoch = u64::from_le_bytes(epoch_bytes);
    let op_byte = *payload.get(8).ok_or_else(|| corrupt("missing op byte"))?;
    let body = &payload[9..];
    let op = match op_byte {
        OP_APPEND => {
            let labeled = *body.first().ok_or_else(|| corrupt("missing label flag"))?;
            let mut rest = &body[1..];
            let label = match labeled {
                0 => None,
                1 => {
                    let bytes: [u8; 4] = rest
                        .get(..4)
                        .and_then(|b| b.try_into().ok())
                        .ok_or_else(|| corrupt("truncated label"))?;
                    rest = &rest[4..];
                    Some(i32::from_le_bytes(bytes))
                }
                _ => return Err(corrupt("label flag is neither 0 nor 1")),
            };
            let count_bytes: [u8; 4] = rest
                .get(..4)
                .and_then(|b| b.try_into().ok())
                .ok_or_else(|| corrupt("truncated value count"))?;
            let count = u32::from_le_bytes(count_bytes) as usize;
            rest = &rest[4..];
            if rest.len() != count * 8 {
                return Err(corrupt("value block does not match its count"));
            }
            let values: Vec<f64> = rest
                .chunks_exact(8)
                .map(|c| {
                    // chunks_exact(8) yields exactly 8 bytes per chunk.
                    // audit:allow(no-panic-in-lib): infallible, see above
                    f64::from_le_bytes(c.try_into().expect("8-byte chunk"))
                })
                .collect();
            let series = match label {
                Some(l) => TimeSeries::with_label(values, l),
                None => TimeSeries::new(values),
            }
            .map_err(|e| corrupt(&format!("append payload is not a valid series: {e}")))?;
            WalOp::Append(series)
        }
        OP_REMOVE => {
            let bytes: [u8; 8] = body
                .get(..8)
                .and_then(|b| b.try_into().ok())
                .filter(|_| body.len() == 8)
                .ok_or_else(|| corrupt("remove body is not a u64 index"))?;
            WalOp::Remove(u64::from_le_bytes(bytes) as usize)
        }
        OP_REFINE => {
            let bytes: [u8; 8] = body
                .get(..8)
                .and_then(|b| b.try_into().ok())
                .filter(|_| body.len() == 8)
                .ok_or_else(|| corrupt("refine body is not an f64 threshold"))?;
            WalOp::Refine(f64::from_le_bytes(bytes))
        }
        other => return Err(corrupt(&format!("unknown op byte {other}"))),
    };
    Ok((epoch, op))
}

/// A decoded journal: its records and how it ended.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DecodedLog {
    /// Every intact record, in append order.
    pub records: Vec<(u64, WalOp)>,
    /// Byte length of the intact prefix (header + intact records) — the
    /// resume point a writer must truncate to before appending again.
    pub valid_len: usize,
    /// Bytes of torn tail dropped (0 for a cleanly closed log).
    pub torn_bytes: usize,
}

/// Decodes a journal byte-for-byte, applying the torn-tail rule: a
/// truncated or CRC-failing **final** record is dropped (a crash tears
/// only the tail of an append-only log); the same damage before the final
/// record is corruption. A file shorter than the header is treated as a
/// torn (empty) log; a present-but-wrong header is corruption.
pub(crate) fn decode_log(bytes: &[u8]) -> Result<DecodedLog> {
    if bytes.len() < HEADER_LEN {
        // A crash while creating the sidecar can tear the header itself;
        // nothing was journaled yet, so recover an empty log.
        return Ok(DecodedLog {
            records: Vec::new(),
            valid_len: 0,
            torn_bytes: bytes.len(),
        });
    }
    if &bytes[..4] != MAGIC {
        return Err(OnexError::SnapshotCorrupt(
            "wal header: bad magic (not an ONEX wal file)".to_string(),
        ));
    }
    if bytes[4] != VERSION {
        return Err(OnexError::SnapshotCorrupt(format!(
            "wal header: unsupported version {} (this build reads v{VERSION})",
            bytes[4]
        )));
    }
    let mut records = Vec::new();
    let mut at = HEADER_LEN;
    while at < bytes.len() {
        let frame_start = at;
        let Some(len_bytes) = bytes
            .get(at..at + 4)
            .and_then(|b| <[u8; 4]>::try_from(b).ok())
        else {
            // Torn mid-length-prefix: drop the tail.
            return Ok(DecodedLog {
                records,
                valid_len: frame_start,
                torn_bytes: bytes.len() - frame_start,
            });
        };
        let len = u32::from_le_bytes(len_bytes) as usize;
        let end = frame_start + 4 + len + 4;
        if end > bytes.len() || len > bytes.len() {
            // Torn mid-payload (or a length prefix itself torn into
            // garbage): either way the damage reaches EOF, so drop it.
            return Ok(DecodedLog {
                records,
                valid_len: frame_start,
                torn_bytes: bytes.len() - frame_start,
            });
        }
        let payload = &bytes[frame_start + 4..frame_start + 4 + len];
        let stored_bytes: [u8; 4] = bytes[frame_start + 4 + len..end]
            .try_into()
            // The slice above is exactly 4 bytes by construction.
            // audit:allow(no-panic-in-lib): infallible, see above
            .expect("4-byte crc slice");
        let stored = u32::from_le_bytes(stored_bytes);
        if crc32(payload) != stored {
            if end == bytes.len() {
                // CRC failure on the final record: a crash landed between
                // the payload bytes and the sync — drop the tail.
                return Ok(DecodedLog {
                    records,
                    valid_len: frame_start,
                    torn_bytes: bytes.len() - frame_start,
                });
            }
            return Err(OnexError::SnapshotCorrupt(format!(
                "wal record at byte {frame_start}: CRC mismatch before the final record \
                 (mid-log damage, not a torn append)"
            )));
        }
        records.push(decode_payload(payload, frame_start)?);
        at = end;
    }
    Ok(DecodedLog {
        records,
        valid_len: bytes.len(),
        torn_bytes: 0,
    })
}

/// The result of [`replay`]: the recovered base and epoch, plus what the
/// recovery had to do to get there.
#[derive(Debug)]
pub(crate) struct Recovery {
    /// The base with every journaled operation re-applied.
    pub base: OnexBase,
    /// The epoch after replay.
    pub epoch: u64,
    /// Operations applied (records at or below the snapshot epoch are
    /// skipped idempotently and not counted).
    pub applied: usize,
    /// Byte length of the intact journal prefix (the writer's resume
    /// point).
    pub valid_len: u64,
    /// Bytes of torn tail dropped.
    pub torn_bytes: usize,
}

/// Replays the journal at `path` on top of `(base, epoch)`. Records the
/// snapshot already covers (epoch ≤ the snapshot's) are skipped; each
/// remaining record must produce exactly the next epoch; a torn tail is
/// dropped per [`decode_log`]. When anything was applied, the recovered
/// base must pass [`OnexBase::validate_invariants`] before it is returned
/// — recovery never serves a structurally damaged base.
pub(crate) fn replay(path: &Path, base: OnexBase, epoch: u64) -> Result<Recovery> {
    let bytes = std::fs::read(path)
        .map_err(|e| OnexError::Io(format!("reading wal {}: {e}", path.display())))?;
    let decoded = decode_log(&bytes)?;
    let mut base = base;
    let mut epoch = epoch;
    let mut applied = 0usize;
    for (record_epoch, op) in decoded.records {
        if record_epoch <= epoch {
            // Already folded into the snapshot (or a duplicate append of
            // the same record): replay is idempotent, skip it.
            continue;
        }
        if record_epoch != epoch + 1 {
            return Err(OnexError::SnapshotCorrupt(format!(
                "wal {}: epoch gap — record produces epoch {record_epoch} but the \
                 recovered base is at {epoch}",
                path.display()
            )));
        }
        base = match op {
            WalOp::Append(series) => maintain::append_series_impl(base, series)?.0,
            WalOp::Remove(index) => maintain::remove_series_impl(base, index)?.0,
            WalOp::Refine(st) => refine::refine_impl(&base, st)?,
        };
        epoch = record_epoch;
        applied += 1;
    }
    if applied > 0 {
        base.validate_invariants()?;
    }
    Ok(Recovery {
        base,
        epoch,
        applied,
        valid_len: decoded.valid_len as u64,
        torn_bytes: decoded.torn_bytes,
    })
}

/// An open journal accepting appends; owned by the `Explorer` that has a
/// WAL attached and shared by its clones under the writer lock.
#[derive(Debug)]
pub(crate) struct WalWriter {
    file: File,
    path: PathBuf,
}

impl WalWriter {
    /// Creates (or truncates to `resume_len` and reopens) the journal at
    /// `path` for appending. A fresh or shorter-than-header file gets a
    /// new header; `resume_len` is [`Recovery::valid_len`] — everything
    /// past it is a dropped torn tail and must not survive into the next
    /// append.
    pub fn open(path: &Path, resume_len: u64) -> Result<Self> {
        let io = |what: &str, e: std::io::Error| {
            OnexError::Io(format!("{what} wal {}: {e}", path.display()))
        };
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io("opening", e))?;
        if resume_len >= HEADER_LEN as u64 {
            file.set_len(resume_len).map_err(|e| io("truncating", e))?;
        } else {
            file.set_len(0).map_err(|e| io("truncating", e))?;
        }
        let mut writer = WalWriter {
            file,
            path: path.to_path_buf(),
        };
        if resume_len < HEADER_LEN as u64 {
            writer.write_sync(&[MAGIC[0], MAGIC[1], MAGIC[2], MAGIC[3], VERSION], "header")?;
        } else {
            use std::io::Seek;
            writer
                .file
                .seek(std::io::SeekFrom::End(0))
                .map_err(|e| io("seeking", e))?;
        }
        Ok(writer)
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one operation producing `epoch`, fsyncing before returning
    /// — the write-ahead contract: once this returns, the operation
    /// survives a crash. Honors the `wal-append` fault point: a torn
    /// injection writes a seeded prefix of the record and fails, exactly
    /// the damage [`decode_log`]'s torn-tail rule recovers from.
    pub fn append(&mut self, op: &WalOp, epoch: u64) -> Result<()> {
        let record = encode_record(op, epoch);
        match crate::fault::probe(crate::fault::WAL_APPEND, record.len()) {
            None => self.write_sync(&record, "appending record to"),
            Some(crate::fault::Injection::Fail) => Err(OnexError::Io(format!(
                "appending record to wal {}: injected fault before write",
                self.path.display()
            ))),
            Some(crate::fault::Injection::Torn { keep }) => {
                let keep = keep.min(record.len());
                let _ = self.write_sync(&record[..keep], "appending record to");
                Err(OnexError::Io(format!(
                    "appending record to wal {}: injected fault tore the append after \
                     {keep} of {} bytes",
                    self.path.display(),
                    record.len()
                )))
            }
        }
    }

    /// Truncates the journal back to an empty (header-only) log — called
    /// after a successful snapshot checkpoint folds every record in.
    pub fn reset(&mut self) -> Result<()> {
        self.file
            .set_len(HEADER_LEN as u64)
            .map_err(|e| OnexError::Io(format!("truncating wal {}: {e}", self.path.display())))?;
        use std::io::Seek;
        self.file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| OnexError::Io(format!("seeking wal {}: {e}", self.path.display())))?;
        self.file
            .sync_all()
            .map_err(|e| OnexError::Io(format!("syncing wal {}: {e}", self.path.display())))
    }

    fn write_sync(&mut self, bytes: &[u8], what: &str) -> Result<()> {
        let io =
            |e: std::io::Error| OnexError::Io(format!("{what} wal {}: {e}", self.path.display()));
        self.file.write_all(bytes).map_err(io)?;
        self.file.sync_all().map_err(io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(n: usize) -> TimeSeries {
        TimeSeries::new((0..n).map(|i| i as f64 / n as f64).collect()).unwrap()
    }

    #[test]
    fn records_round_trip_through_the_frame() {
        let ops = [
            WalOp::Append(series(9)),
            WalOp::Append(TimeSeries::with_label(vec![0.5, 0.25], -3).unwrap()),
            WalOp::Remove(7),
            WalOp::Refine(0.35),
        ];
        let mut bytes = vec![MAGIC[0], MAGIC[1], MAGIC[2], MAGIC[3], VERSION];
        for (i, op) in ops.iter().enumerate() {
            bytes.extend_from_slice(&encode_record(op, i as u64 + 1));
        }
        let decoded = decode_log(&bytes).unwrap();
        assert_eq!(decoded.torn_bytes, 0);
        assert_eq!(decoded.valid_len, bytes.len());
        assert_eq!(decoded.records.len(), ops.len());
        for (i, (epoch, op)) in decoded.records.iter().enumerate() {
            assert_eq!(*epoch, i as u64 + 1);
            assert_eq!(op, &ops[i]);
        }
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut_point() {
        let mut bytes = vec![MAGIC[0], MAGIC[1], MAGIC[2], MAGIC[3], VERSION];
        bytes.extend_from_slice(&encode_record(&WalOp::Remove(1), 1));
        let intact = bytes.len();
        bytes.extend_from_slice(&encode_record(&WalOp::Refine(0.3), 2));
        // Every strict prefix of the final record decodes to exactly the
        // first record plus a dropped tail.
        for cut in intact..bytes.len() - 1 {
            let decoded = decode_log(&bytes[..cut]).unwrap();
            assert_eq!(decoded.records.len(), 1, "cut at {cut}");
            assert_eq!(decoded.valid_len, intact, "cut at {cut}");
            assert_eq!(decoded.torn_bytes, cut - intact, "cut at {cut}");
        }
    }

    #[test]
    fn mid_log_damage_is_corruption_but_final_record_damage_is_torn() {
        let mut bytes = vec![MAGIC[0], MAGIC[1], MAGIC[2], MAGIC[3], VERSION];
        bytes.extend_from_slice(&encode_record(&WalOp::Remove(1), 1));
        let first_end = bytes.len();
        bytes.extend_from_slice(&encode_record(&WalOp::Refine(0.3), 2));
        // Flip a payload bit of the FINAL record: dropped as torn.
        let mut final_flip = bytes.clone();
        final_flip[first_end + 6] ^= 0x04;
        let decoded = decode_log(&final_flip).unwrap();
        assert_eq!(decoded.records.len(), 1);
        assert_eq!(decoded.valid_len, first_end);
        // Flip the same relative bit of the FIRST record: corruption.
        let mut mid_flip = bytes.clone();
        mid_flip[HEADER_LEN + 6] ^= 0x04;
        let err = decode_log(&mid_flip).unwrap_err();
        assert!(matches!(err, OnexError::SnapshotCorrupt(_)), "{err:?}");
        // A wrong header is corruption too, never a silent empty log.
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xFF;
        assert!(decode_log(&bad_magic).is_err());
        let mut bad_version = bytes;
        bad_version[4] = 9;
        assert!(decode_log(&bad_version).is_err());
    }

    #[test]
    fn header_shorter_than_five_bytes_recovers_as_empty() {
        for cut in 0..HEADER_LEN {
            let decoded = decode_log(&vec![b'O'; cut]).unwrap();
            assert!(decoded.records.is_empty());
            assert_eq!(decoded.valid_len, 0);
        }
    }

    #[test]
    fn hostile_length_prefix_is_a_torn_tail_not_a_huge_allocation() {
        let mut bytes = vec![MAGIC[0], MAGIC[1], MAGIC[2], MAGIC[3], VERSION];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0xAB; 16]);
        let decoded = decode_log(&bytes).unwrap();
        assert!(decoded.records.is_empty());
        assert_eq!(decoded.valid_len, HEADER_LEN);
    }
}
