//! **Tables 2 & 3** — solution accuracy against the brute-force exact
//! answer (§6.2: error = system's solution distance − exact distance, both
//! as normalized DTW to the query; accuracy = (1 − avg error)·100).
//!
//! * Table 2: solutions restricted to the query's length — ONEX-S vs
//!   Trillion. Paper: ONEX-S 97–99% vs Trillion 72–97% (+12.6% on average).
//! * Table 3: any-length solutions — ONEX vs Trillion vs PAA. Paper: ONEX
//!   98–99.8%, ahead of Trillion by ~19.5% and PAA by ~2%. Trillion's drop
//!   comes from its same-length restriction: for queries not in the dataset
//!   the true optimum often lives at a different length.

use super::Ctx;
use crate::harness::{self, accuracy_from_errors, build_timed, make_queries};
use onex_baselines::{BruteForce, PaaSearch, Trillion};
use onex_core::{Explorer, MatchMode, QueryOptions};
use onex_ts::synth::PaperDataset;
use onex_ts::Decomposition;

/// Paper Table 2: (ONEX-S, Trillion) accuracy %.
pub const PAPER_T2: [(f64, f64); 6] = [
    (97.77, 82.97),
    (99.48, 74.58),
    (97.82, 71.87),
    (97.87, 87.67),
    (97.20, 96.99),
    (99.20, 88.04),
];

/// Paper Table 3: (ONEX, Trillion, PAA) accuracy %.
pub const PAPER_T3: [(f64, f64, f64); 6] = [
    (99.47, 82.97, 92.99),
    (99.81, 74.58, 96.36),
    (98.74, 71.87, 96.55),
    (99.48, 87.67, 99.21),
    (98.28, 96.99, 99.65),
    (98.54, 88.05, 99.25),
];

/// Runs both accuracy tables.
pub fn run(ctx: &Ctx) {
    let mut t2_rows = Vec::new();
    let mut t3_rows = Vec::new();

    for ds in PaperDataset::EVALUATION {
        let data = ds.generate_scaled(ctx.scale, ctx.seed);
        let (base, _) = build_timed(&data, ctx.config());
        let explorer = Explorer::from_base(base);
        let base = explorer.base();
        let (n_in, n_out) = ctx.query_mix();
        let queries = make_queries(ds, &base, n_in, n_out, ctx.seed);
        let window = base.config().window;

        let mut trillion = Trillion::new(base.dataset(), window);
        let mut paa = PaaSearch::new(base.dataset(), window, Decomposition::full(), 4);
        let mut oracle = BruteForce::oracle(base.dataset(), window);

        let (mut e_onex_s, mut e_trillion_same) = (Vec::new(), Vec::new());
        let (mut e_onex, mut e_trillion_any, mut e_paa) = (Vec::new(), Vec::new(), Vec::new());
        for q in &queries {
            let len = q.values.len();
            // The §6.2 oracle is always "the exact solution as provided by
            // the brute force Standard DTW" — the any-length optimum — for
            // both tables (Standard DTW is not length-restricted). The
            // error is the difference between "the DTW between the solution
            // and the query" (paper wording: raw DTW, the cross-length
            // ranking metric — DESIGN.md §5) and the exact solution's,
            // clamped to [0, 1] since accuracy cannot go negative.
            let exact = oracle.best_match_any(&q.values).expect("non-empty");
            let err = |raw: f64| (raw - exact.raw_dtw).clamp(0.0, 1.0);

            // Table 2: systems restricted to the query's length, scored
            // against the global optimum.
            if let Ok(m) =
                explorer.best_match(&q.values, MatchMode::Exact(len), QueryOptions::default())
            {
                e_onex_s.push(err(m.raw_dtw));
            }
            let t_match = trillion.best_match(&q.values);
            if let Some(t) = t_match {
                e_trillion_same.push(err(t.raw_dtw));
            }

            // Table 3: any-length systems against the same oracle.
            if let Ok(m) = explorer.best_match(&q.values, MatchMode::Any, QueryOptions::default()) {
                e_onex.push(err(m.raw_dtw));
            }
            if let Some(t) = t_match {
                e_trillion_any.push(err(t.raw_dtw));
            }
            if let Some(p) = paa.best_match_any(&q.values) {
                e_paa.push(err(p.raw_dtw));
            }
        }
        t2_rows.push((
            ds.name(),
            accuracy_from_errors(&e_onex_s),
            accuracy_from_errors(&e_trillion_same),
        ));
        t3_rows.push((
            ds.name(),
            accuracy_from_errors(&e_onex),
            accuracy_from_errors(&e_trillion_any),
            accuracy_from_errors(&e_paa),
        ));
    }

    println!(
        "\n== Table 2: same-length accuracy %, ONEX-S vs Trillion (scale {}) ==\n",
        ctx.scale
    );
    let widths = [12, 9, 10, 14, 15];
    let mut table = harness::Table::new(
        "table2_same_length_accuracy",
        &[
            "dataset",
            "ONEX-S",
            "Trillion",
            "paper ONEX-S",
            "paper Trillion",
        ],
        &widths,
    );
    for (i, (name, o, t)) in t2_rows.iter().enumerate() {
        let (po, pt) = PAPER_T2[i];
        table.row(vec![
            name.to_string(),
            format!("{o:.2}"),
            format!("{t:.2}"),
            format!("{po:.2}"),
            format!("{pt:.2}"),
        ]);
    }
    table.finish(ctx.csv());
    let d2: Vec<f64> = t2_rows.iter().map(|r| r.1 - r.2).collect();
    println!(
        "\nmeasured: ONEX-S more accurate by {:.1} points on average (paper: ~12.6).",
        harness::mean(&d2)
    );

    println!(
        "\n== Table 3: any-length accuracy %, ONEX vs Trillion vs PAA (scale {}) ==\n",
        ctx.scale
    );
    let widths = [12, 9, 10, 8, 12, 15, 11];
    let mut table = harness::Table::new(
        "table3_any_length_accuracy",
        &[
            "dataset",
            "ONEX",
            "Trillion",
            "PAA",
            "paper ONEX",
            "paper Trillion",
            "paper PAA",
        ],
        &widths,
    );
    for (i, (name, o, t, p)) in t3_rows.iter().enumerate() {
        let (po, pt, pp) = PAPER_T3[i];
        table.row(vec![
            name.to_string(),
            format!("{o:.2}"),
            format!("{t:.2}"),
            format!("{p:.2}"),
            format!("{po:.2}"),
            format!("{pt:.2}"),
            format!("{pp:.2}"),
        ]);
    }
    table.finish(ctx.csv());
    let d3: Vec<f64> = t3_rows.iter().map(|r| r.1 - r.2).collect();
    let dp: Vec<f64> = t3_rows.iter().map(|r| r.1 - r.3).collect();
    println!(
        "\nmeasured: ONEX ahead of Trillion by {:.1} points and of PAA by {:.1} (paper: ~19.5 / ~2).",
        harness::mean(&d3),
        harness::mean(&dp)
    );
}
