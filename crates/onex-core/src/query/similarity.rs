//! Class I similarity queries (Algorithm 2.A): given a sample sequence,
//! return the most similar subsequence(s) in the dataset — exact-length or
//! any-length — by exploring the R-Space instead of the raw data.
//!
//! The three-step process of §5.2: (1) GTI lookup of the candidate lengths,
//! (2) best-matching-representative search over each length's groups (DTW
//! against representatives only, with LB pruning and early abandoning, in
//! median-sum order), (3) best-match search *inside* the selected group,
//! walking the ED-sorted member list outward from the predicted position.
//!
//! The search core is a set of free functions over [`SearchParams`] (what
//! to do) and a [`SearchCtx`] (per-call scratch: the DTW buffer and the
//! instrumentation counters). Nothing is borrowed mutably from the base, so
//! any number of threads can search one base concurrently, each with its
//! own context — this is what [`crate::engine::Explorer`] builds on. The
//! legacy [`SimilarityQuery`] wrapper owns one context and forwards.
//!
//! ## The cascaded lower-bound pipeline
//!
//! Every DTW candidate — representative *and* group member — runs through
//! [`cascade_eval`], the UCR-suite filter cascade ported from the trillion
//! baseline, fronted by a dimensionality-reduced **sketch tier**:
//! (0) the O(w) PAA sketch bound, where the sketch genuinely reduces
//! (`w < len`): the candidate's precomputed sketch (member or
//! representative) against the PAA'd envelope of the query, plus, for a
//! representative, the query's sketch against the representative's
//! *stored* PAA'd envelope (each
//! `lb_paa_env_sq ≤ LB_Keogh² ≤ banded DTW²`); then (1) O(1) LB_Kim,
//! (2) LB_Keogh of the
//! candidate against the *query's* envelope in squared space with
//! contribution-ordered early abandoning, (3) LB_Keogh of the query
//! against the *candidate's* stored envelope where one exists (group
//! representatives), (4) early-abandoned DTW seeded with the
//! query-envelope suffix bound. The query's envelope, contribution order,
//! PAA sketch and PAA'd envelope are built lazily once per `(query,
//! resolved radius)` in a [`SearchCtx`]-owned cache, so the per-candidate
//! cost of tier 0 is O(w), of tiers 2 and 4 O(n), all with zero
//! allocation. Tiers 0 and 2–4 require equal lengths (LB_Keogh is
//! undefined otherwise) and only fire when the running cutoff is finite;
//! every prune uses a strictly-greater test (tier 0 additionally
//! guard-banded by [`PAA_TIER0_MARGIN`]), so a pruned candidate can never
//! be (or tie into) the true answer — the cascade changes work done,
//! never results.

use super::par::{fan_stripes, plan_workers, SharedCutoff, SharedTopK};
use super::validate_query;

/// Guard band for the tier-0 sketch prune, mirroring the construction
/// assigner's `PAA_PREFILTER_MARGIN`: the sketch bound is computed with a
/// different floating-point association (blocked weighted sum) than the
/// DTW-family values the cutoff comes from, so where its mathematical
/// slack is small an exact-tie candidate could be overshot by a few ulps.
/// Pruning only beyond `cutoff² × (1 + margin)` makes the tier provably
/// conservative — accumulated rounding is ~n·ε ≈ 1e-13 — while giving up
/// only boundary-noise prunes.
const PAA_TIER0_MARGIN: f64 = 1e-9;
use crate::index::LengthIndex;
use crate::store::LengthSlab;
use crate::symindex::SymIndex;
use crate::{GroupId, OnexBase, OnexConfig, OnexError, Result};
use onex_dist::{
    lb_keogh, lb_keogh_cumulative_into, lb_keogh_sq_abandon, lb_kim_fl, lb_paa_env_sq,
    paa_envelope_into, paa_into, paa_segment_weights, DtwBuffer, Envelope, EnvelopeRef, Window,
};
use onex_ts::SubseqRef;
use std::time::Instant;

/// Which lengths a similarity query searches (the paper's `MATCH` clause).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchMode {
    /// `MATCH = Exact(L)`: only subsequences of length `L`.
    Exact(usize),
    /// `MATCH = Any`: all decomposed lengths, ranked by normalized DTW.
    Any,
}

/// A retrieved match.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// The matched subsequence.
    pub subseq: SubseqRef,
    /// Normalized DTW `DTW/2n` (Def. 6) between query and match — the
    /// cross-length-comparable score.
    pub dist: f64,
    /// Raw DTW between query and match.
    pub raw_dtw: f64,
    /// The group the match came from.
    pub group: GroupId,
    /// Normalized DTW between the query and that group's representative.
    pub rep_dist: f64,
}

/// Instrumentation counters, exposed for the ablation experiments and
/// aggregated into [`crate::engine::QueryStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Representatives considered.
    pub reps_examined: usize,
    /// Representatives skipped by the LB cascade before any DTW work.
    pub reps_lb_pruned: usize,
    /// Full or early-abandoned DTW evaluations against representatives.
    pub rep_dtw_evals: usize,
    /// Group members evaluated with DTW (full or early-abandoned).
    pub members_examined: usize,
    /// Group members skipped by the LB cascade before any DTW work.
    pub members_lb_pruned: usize,
    /// LB_Keogh evaluations (query-envelope and candidate-envelope tiers),
    /// including ones that did not prune.
    pub lb_keogh_evals: usize,
    /// DTW evaluations abandoned early (cutoff or suffix bound), counted
    /// inside `rep_dtw_evals`/`members_examined`.
    pub early_abandons: usize,
    /// Candidates (representatives + members) killed by tier 0, the O(w)
    /// PAA sketch bound.
    pub pruned_paa: usize,
    /// Candidates (representatives + members) killed by tier 1, LB_Kim.
    pub pruned_kim: usize,
    /// Candidates killed by tier 2, LB_Keogh against the query's envelope.
    pub pruned_keogh_eq: usize,
    /// Candidates killed by tier 3, LB_Keogh against the candidate's own
    /// stored envelope.
    pub pruned_keogh_ec: usize,
    /// Lengths visited (any-length queries).
    pub lengths_visited: usize,
    /// Symbolic-index bucket bounds evaluated (hierarchy nodes probed).
    pub index_probes: usize,
    /// Groups the symbolic index left as candidates at probe time.
    pub index_candidates: usize,
    /// Per-length rep scans where the symbolic index could not engage
    /// (toggle off conditions unmet, or no finite cutoff materialized)
    /// and the full slab scan ran instead.
    pub index_fallbacks: usize,
    /// Groups skipped wholesale by a certified index bucket bound —
    /// each counted exactly as the tier-0 prune it stands in for (it
    /// also increments `reps_examined`, `reps_lb_pruned`, `pruned_paa`).
    pub groups_skipped_by_index: usize,
}

impl QueryStats {
    /// Total DTW evaluations (representatives + members).
    pub fn dtw_evals(&self) -> usize {
        self.rep_dtw_evals + self.members_examined
    }

    /// Total candidates killed by the LB cascade (representatives +
    /// members); always equals the sum of the per-tier prune counters
    /// (`pruned_paa + pruned_kim + pruned_keogh_eq + pruned_keogh_ec`).
    pub fn lb_pruned(&self) -> usize {
        self.reps_lb_pruned + self.members_lb_pruned
    }

    /// Field-wise sum of another context's counters into this one — how a
    /// striped scan folds its per-worker counters (each worker counts into
    /// its own `SearchCtx`; nothing is shared, so the aggregate is the
    /// exact total of the work performed, with no lost updates).
    pub(crate) fn merge_counts(&mut self, o: &QueryStats) {
        self.reps_examined += o.reps_examined;
        self.reps_lb_pruned += o.reps_lb_pruned;
        self.rep_dtw_evals += o.rep_dtw_evals;
        self.members_examined += o.members_examined;
        self.members_lb_pruned += o.members_lb_pruned;
        self.lb_keogh_evals += o.lb_keogh_evals;
        self.early_abandons += o.early_abandons;
        self.pruned_paa += o.pruned_paa;
        self.pruned_kim += o.pruned_kim;
        self.pruned_keogh_eq += o.pruned_keogh_eq;
        self.pruned_keogh_ec += o.pruned_keogh_ec;
        self.lengths_visited += o.lengths_visited;
        self.index_probes += o.index_probes;
        self.index_candidates += o.index_candidates;
        self.index_fallbacks += o.index_fallbacks;
        self.groups_skipped_by_index += o.groups_skipped_by_index;
    }
}

/// Everything that *configures* one search: the base's build-time knobs,
/// optionally overridden per query by [`crate::engine::QueryOptions`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct SearchParams {
    /// Similarity threshold for the qualifying-representative test.
    pub st: f64,
    /// DTW warping window.
    pub window: Window,
    /// Apply lower-bound pruning (the master switch): `false` disables
    /// every LB tier and evaluates candidates with plain early-abandoned
    /// DTW — the reference for the equivalence tests and ablations.
    pub lb_pruning: bool,
    /// Apply the full per-candidate cascade (query-envelope LB_Keogh with
    /// contribution-ordered abandoning, squared-space candidate-envelope
    /// LB_Keogh, suffix-seeded DTW abandoning) on top of `lb_pruning`.
    /// `false` falls back to LB_Kim plus the plain representative-envelope
    /// check only. Ignored when `lb_pruning` is off.
    pub cascade: bool,
    /// Sketch width of the base's stored PAA planes (the cascade's tier-0
    /// stride; resolved per length as `min(paa_width, len)`).
    pub paa_width: usize,
    /// Consult the per-length symbolic word index for certified group
    /// skips ahead of the rep scan. The index only proposes: every skip
    /// is certified equivalent to a tier-0 prune, so results — and the
    /// cascade counters — are identical with the toggle off; only the
    /// `index_*` counters and work done change.
    pub symindex: bool,
    /// Absolute deadline; the search returns its best-so-far once passed.
    pub deadline: Option<Instant>,
    /// Cap on total DTW evaluations (representatives + members).
    pub max_dtw_evals: Option<usize>,
    /// How many best-matching groups to descend into per length.
    pub explore_top_groups: usize,
    /// Intra-group walk patience (consecutive non-improving probes).
    pub walk_patience: usize,
    /// Evaluate every member of the selected group.
    pub exhaustive_group_search: bool,
    /// Stop the any-length search at the first qualifying representative.
    pub stop_at_first_qualifying: bool,
    /// Rank any-length candidates by normalized (vs raw) DTW.
    pub rank_normalized: bool,
    /// Resolved intra-query worker count (≥ 1) for the striped per-length
    /// scans; `1` is the exact sequential path. Accuracy-neutral — see
    /// [`crate::query::par`] for the soundness argument.
    pub query_threads: usize,
}

impl SearchParams {
    /// Parameters exactly matching the base's build-time configuration —
    /// the legacy `SimilarityQuery` semantics.
    pub fn from_config(config: &OnexConfig, st: Option<f64>) -> Self {
        SearchParams {
            st: st.unwrap_or(config.st),
            window: config.window,
            lb_pruning: true,
            cascade: true,
            paa_width: config.paa_width,
            symindex: true,
            deadline: None,
            max_dtw_evals: None,
            explore_top_groups: config.explore_top_groups,
            walk_patience: config.walk_patience,
            exhaustive_group_search: config.exhaustive_group_search,
            stop_at_first_qualifying: config.stop_at_first_qualifying,
            rank_normalized: config.rank_normalized,
            query_threads: config.resolved_query_threads(),
        }
    }

    /// Whether this search carries an anytime budget (deadline or DTW
    /// cap); budgeted searches always run the sequential scan so the
    /// truncation point stays deterministic.
    fn budgeted(&self) -> bool {
        self.deadline.is_some() || self.max_dtw_evals.is_some()
    }
}

/// Lazily built, per-query envelope state for the cascade's query-side
/// tiers: the query's LB_Keogh envelope, the UCR-suite contribution order
/// (indices sorted by |deviation from the query mean|, largest first),
/// and the tier-0 sketch state — the query's PAA sketch, its PAA'd
/// envelope, and the segment weights. The query-side tiers only fire for
/// candidates of the query's own length, so one search resolves exactly
/// one band radius and a single slot suffices; the build cost amortizes
/// across every group and member evaluated at that length. The slot
/// rebuilds defensively if a different radius is ever requested.
#[derive(Debug, Default)]
pub(crate) struct QueryEnvelopeCache {
    entry: Option<QueryEnvelope>,
}

#[derive(Debug)]
struct QueryEnvelope {
    radius: usize,
    env: Envelope,
    order: Vec<usize>,
    /// The query's PAA sketch, width `min(paa_width, q.len())`.
    paa: Vec<f64>,
    /// Segment-max of the query envelope's upper plane (tier 0, members).
    paa_env_hi: Vec<f64>,
    /// Segment-min of the query envelope's lower plane (tier 0, members).
    paa_env_lo: Vec<f64>,
    /// Per-segment sample counts as tier-0 kernel weights.
    weights: Vec<f64>,
}

impl QueryEnvelopeCache {
    /// Drops the previous query's entry.
    fn begin(&mut self) {
        self.entry = None;
    }

    /// The entry for `radius`, building it on first request. `paa_width`
    /// is the base's configured sketch width (clamped here to the query
    /// length, matching the slab-side clamp for equal-length candidates).
    fn entry(&mut self, q: &[f64], radius: usize, paa_width: usize) -> &QueryEnvelope {
        if self.entry.as_ref().is_none_or(|e| e.radius != radius) {
            let env = Envelope::build(q, radius);
            let mean = q.iter().sum::<f64>() / q.len().max(1) as f64;
            let mut order: Vec<usize> = (0..q.len()).collect();
            order.sort_unstable_by(|&a, &b| {
                let da = (q[a] - mean).abs();
                let db = (q[b] - mean).abs();
                db.total_cmp(&da)
            });
            let w = paa_width.clamp(1, q.len().max(1));
            let mut paa = Vec::with_capacity(w);
            paa_into(q, w, &mut paa);
            let (mut hi, mut lo) = (Vec::with_capacity(w), Vec::with_capacity(w));
            paa_envelope_into(&env.upper, &env.lower, w, &mut hi, &mut lo);
            self.entry = Some(QueryEnvelope {
                radius,
                env,
                order,
                paa,
                paa_env_hi: hi,
                paa_env_lo: lo,
                weights: paa_segment_weights(q.len().max(1), w),
            });
        }
        // The branch above just stored Some(..) when the entry was absent.
        // audit:allow(no-panic-in-lib): infallible, see above
        self.entry.as_ref().expect("just built")
    }
}

/// Per-call scratch state: the DTW buffer (so repeated queries allocate
/// nothing) and the counters for the query in flight. One context per
/// thread of execution; contexts are never shared.
#[derive(Debug, Default)]
pub(crate) struct SearchCtx {
    /// DTW scratch rows, reused across evaluations.
    pub buf: DtwBuffer,
    /// Counters for the current query.
    pub stats: QueryStats,
    /// Set when a deadline or evaluation cap stopped the search early; the
    /// result is the best found within budget (anytime semantics).
    pub truncated: bool,
    /// Set when a striped scan lost a worker to a panic and the whole scan
    /// re-ran on the sequential twin. The answer is still exact — only the
    /// fast path degraded.
    pub degraded: bool,
    /// Query envelope + contribution order, built lazily per query.
    pub qenv: QueryEnvelopeCache,
    /// Scratch for the per-candidate LB_Keogh suffix array.
    pub suffix: Vec<f64>,
    /// Per-group certified-skip mask from the symbolic index (scratch,
    /// valid only for the length scan that filled it).
    pub skip: Vec<bool>,
    /// Scratch for the index probe's per-segment proxy sketch.
    pub proxy: Vec<f64>,
}

impl SearchCtx {
    /// Resets per-query state (the buffers are retained).
    pub fn begin(&mut self) {
        self.stats = QueryStats::default();
        self.truncated = false;
        self.degraded = false;
        self.qenv.begin();
    }

    /// Checks the time/evaluation budget, latching `truncated` once
    /// exceeded. Called before each DTW evaluation; with no budget
    /// configured this is two branch-predictable compares.
    fn out_of_budget(&mut self, p: &SearchParams) -> bool {
        if self.truncated {
            return true;
        }
        if let Some(cap) = p.max_dtw_evals {
            if self.stats.dtw_evals() >= cap {
                self.truncated = true;
                return true;
            }
        }
        if let Some(deadline) = p.deadline {
            if Instant::now() >= deadline {
                self.truncated = true;
                return true;
            }
        }
        false
    }
}

/// Gate for the symbolic-index fast path over one length's rep scan: the
/// index may only *propose* skips where its certified bound provably
/// reproduces a tier-0 prune, which requires the whole tier-0 context to
/// be live — cascade pruning on, equal lengths, a genuinely reducing
/// sketch whose width matches the index's bucket envelopes, and a fully
/// finalized slab (non-finalized groups have zeroed sketch rows the
/// envelopes would misdescribe). Returns the index when every structural
/// condition holds; the remaining condition — a finite cutoff — is
/// per-scan and checked at engagement time.
fn symindex_applicable<'s>(
    sym: Option<&'s SymIndex>,
    q: &[f64],
    slab: &LengthSlab,
    p: &SearchParams,
) -> Option<&'s SymIndex> {
    let sym = sym?;
    let w = p.paa_width.clamp(1, q.len().max(1));
    (p.symindex
        && p.lb_pruning
        && p.cascade
        && q.len() == slab.subseq_len()
        && w < q.len()
        && w == slab.paa_width()
        && sym.width() == w
        && sym.subseq_len() == q.len()
        && sym.all_finalized())
    .then_some(sym)
}

/// Probes the symbolic index at `cutoff` and fills `ctx.skip` with the
/// certified-skip mask, folding the probe counts into the query stats.
/// `cutoff` must be finite; `limit_sq` is exactly tier 0's pruning limit,
/// so a marked group is one tier 0 would provably prune right now.
fn mark_index_skips(sym: &SymIndex, q: &[f64], cutoff: f64, p: &SearchParams, ctx: &mut SearchCtx) {
    let radius = p.window.resolve(q.len(), q.len());
    let SearchCtx {
        ref mut stats,
        ref mut qenv,
        ref mut skip,
        ref mut proxy,
        ..
    } = *ctx;
    let entry = qenv.entry(q, radius, p.paa_width);
    let limit_sq = cutoff * cutoff * (1.0 + PAA_TIER0_MARGIN);
    let out = sym.mark_skips(
        &entry.paa_env_hi,
        &entry.paa_env_lo,
        &entry.weights,
        limit_sq,
        skip,
        proxy,
    );
    stats.index_probes += out.probes;
    stats.index_candidates += out.candidates;
}

/// Charges one index-certified group skip to the counters exactly as the
/// tier-0 prune it replaces (plus the index's own attribution counter), so
/// the per-query statistics are bit-identical with the index on or off.
fn charge_index_skip(stats: &mut QueryStats) {
    stats.reps_examined += 1;
    stats.reps_lb_pruned += 1;
    stats.pruned_paa += 1;
    stats.groups_skipped_by_index += 1;
}

/// Best-representative search result for one length.
struct RepChoice {
    group: GroupId,
    /// Local position within the length's slab.
    local: usize,
    /// Raw DTW between query and the representative.
    raw: f64,
}

/// Which counters a [`cascade_eval`] charges its work to.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Candidate {
    /// A group representative (stores an envelope, enabling tier 3).
    Rep,
    /// A group member (no stored envelope).
    Member,
}

/// Evaluates one candidate through the cascaded lower-bound pipeline:
///
/// 0. **PAA sketch bound** (O(w), equal lengths, `cascade` only, skipped
///    at the degenerate `w == len` where it cannot beat tier 2): the
///    candidate's precomputed sketch (`cand_paa` — members and
///    representatives alike) against the query's PAA'd envelope, and for
///    representatives additionally the query's sketch against the stored
///    PAA'd envelope (`cand_paa_env`, when at least as wide as the band)
///    — each `≤ LB_Keogh ≤ banded DTW`, guard-banded by
///    [`PAA_TIER0_MARGIN`],
/// 1. **LB_Kim** (O(1), any lengths),
/// 2. **query-envelope LB_Keogh** — candidate against the cached query
///    envelope, squared space, contribution-ordered early abandoning
///    (equal lengths, `cascade` only),
/// 3. **candidate-envelope LB_Keogh** — query against `cand_env` when one
///    is stored and at least as wide as the band,
/// 4. **DTW**, early-abandoned against `cutoff` and (under `cascade`)
///    additionally seeded with the query-envelope suffix bound.
///
/// Returns `Some(exact raw DTW)` when the candidate survives; `None` when
/// a bound proved `DTW > cutoff` or the DTW itself was abandoned. All
/// prune tests are strictly-greater, so with any `cutoff` that the caller
/// only ever *lowers* to accepted distances, a pruned candidate can never
/// be the true answer nor displace a tie. With `lb_pruning` off (or an
/// infinite cutoff) this degrades to plain early-abandoned DTW.
///
/// With `cascade` off, members get **no** lower bounds at all — only the
/// pre-cascade engine's representative-level LB_Kim + plain envelope
/// check remains — so the `cascade: false` ablation point measures the
/// pre-cascade engine's lower-bound configuration. (The intra-group
/// walk's patience signal is strict-improvement at every pruning level —
/// see [`best_in_group`] — which is the one deliberate heuristic change
/// from the pre-cascade engine; it is what makes the walk's trajectory
/// independent of pruning.)
#[allow(clippy::too_many_arguments)]
fn cascade_eval(
    q: &[f64],
    cand: &[f64],
    cand_env: Option<EnvelopeRef<'_>>,
    cand_paa: Option<&[f64]>,
    cand_paa_env: Option<EnvelopeRef<'_>>,
    cutoff: f64,
    p: &SearchParams,
    ctx: &mut SearchCtx,
    kind: Candidate,
) -> Option<f64> {
    let SearchCtx {
        ref mut buf,
        ref mut stats,
        ref mut qenv,
        ref mut suffix,
        ..
    } = *ctx;
    let lb_active = p.lb_pruning && cutoff.is_finite() && (p.cascade || kind == Candidate::Rep);
    let equal_len = cand.len() == q.len();
    let radius = p.window.resolve(q.len(), cand.len());
    let mut q_entry: Option<&QueryEnvelope> = None;
    // Tier 4 only pays for the suffix array when tier 2 proved it can
    // contribute: a candidate fully inside the query envelope has an
    // all-zero suffix, which can never tighten the in-matrix abandon.
    let mut suffix_useful = false;
    if lb_active {
        // Tier 0: the O(w) PAA sketch bound, in front of the whole
        // cascade — but only where the sketch genuinely reduces
        // (`w < len`; at `w == len` it would be a full-length,
        // non-abandoning duplicate of tier 2 with zero Jensen slack).
        // Every candidate with a stored sketch (`cand_paa`: members *and*
        // representatives) tests it against the query's PAA'd envelope —
        // valid at any stored-envelope radius, since the query envelope
        // is built at the resolved band. Representatives additionally
        // test the query's sketch against their *stored* PAA'd envelope
        // (`cand_paa_env`, valid only when at least as wide as the band,
        // like tier 3) — two independent O(w) bounds on the same DTW.
        // Prunes are guard-banded like the construction prefilter
        // (`PAA_TIER0_MARGIN`): the bound is computed with a different
        // float association than the DTW it stands in for, and the margin
        // makes an ulp-level overshoot at an exact tie provably unable to
        // drop a qualifying candidate. The width checks skip a test
        // rather than panic if a caller ever hands sketches of a
        // different reduction.
        let sketch_reduces = p.paa_width.clamp(1, q.len().max(1)) < q.len();
        if p.cascade
            && equal_len
            && sketch_reduces
            && (cand_paa.is_some() || cand_paa_env.is_some())
        {
            let entry = qenv.entry(q, radius, p.paa_width);
            let limit_sq = cutoff * cutoff * (1.0 + PAA_TIER0_MARGIN);
            let vs_query_env = cand_paa
                .filter(|cp| cp.len() == entry.paa_env_hi.len())
                .map(|cp| lb_paa_env_sq(cp, &entry.paa_env_hi, &entry.paa_env_lo, &entry.weights));
            let pruned = match vs_query_env {
                Some(lb0_sq) if lb0_sq > limit_sq => true,
                _ => cand_paa_env
                    .filter(|e| e.radius >= radius && e.len() == entry.paa.len())
                    .map(|e| lb_paa_env_sq(&entry.paa, e.upper, e.lower, &entry.weights))
                    .is_some_and(|lb0_sq| lb0_sq > limit_sq),
            };
            if pruned {
                stats.pruned_paa += 1;
                match kind {
                    Candidate::Rep => stats.reps_lb_pruned += 1,
                    Candidate::Member => stats.members_lb_pruned += 1,
                }
                return None;
            }
        }
        // Tier 1: LB_Kim.
        if lb_kim_fl(q, cand) > cutoff {
            stats.pruned_kim += 1;
            match kind {
                Candidate::Rep => stats.reps_lb_pruned += 1,
                Candidate::Member => stats.members_lb_pruned += 1,
            }
            return None;
        }
        let cutoff_sq = cutoff * cutoff;
        // Tier 2: candidate vs the query's envelope (reordered, squared,
        // early-abandoning). Built at most once per (query, radius).
        if p.cascade && equal_len {
            let entry = qenv.entry(q, radius, p.paa_width);
            stats.lb_keogh_evals += 1;
            match lb_keogh_sq_abandon(cand, &entry.env, Some(&entry.order), cutoff_sq) {
                Some(eq_sq) if eq_sq <= cutoff_sq => suffix_useful = eq_sq > 0.0,
                _ => {
                    stats.pruned_keogh_eq += 1;
                    match kind {
                        Candidate::Rep => stats.reps_lb_pruned += 1,
                        Candidate::Member => stats.members_lb_pruned += 1,
                    }
                    return None;
                }
            }
            q_entry = Some(entry);
        }
        // Tier 3: query vs the candidate's stored envelope, valid when it
        // is at least as wide as the band.
        if let Some(env) = cand_env {
            if equal_len && env.radius >= radius {
                stats.lb_keogh_evals += 1;
                let pruned = if p.cascade {
                    !matches!(
                        lb_keogh_sq_abandon(q, env, q_entry.map(|e| e.order.as_slice()), cutoff_sq),
                        Some(ec_sq) if ec_sq <= cutoff_sq
                    )
                } else {
                    lb_keogh(q, env) > cutoff
                };
                if pruned {
                    stats.pruned_keogh_ec += 1;
                    match kind {
                        Candidate::Rep => stats.reps_lb_pruned += 1,
                        Candidate::Member => stats.members_lb_pruned += 1,
                    }
                    return None;
                }
            }
        }
    }
    // Tier 4: DTW. With the query envelope at hand, its suffix sums let
    // the kernel abandon rows that provably cannot beat the cutoff even
    // before the remaining point costs accrue. Argument order is flipped
    // there (candidate rows against the query) because the suffix bounds
    // the candidate's contributions; DTW's DP is transpose-symmetric, so
    // the value is bit-identical either way.
    match kind {
        Candidate::Rep => stats.rep_dtw_evals += 1,
        Candidate::Member => stats.members_examined += 1,
    }
    let d = match q_entry {
        Some(entry) if suffix_useful => {
            lb_keogh_cumulative_into(cand, &entry.env, suffix);
            buf.dist_early_abandon_with_suffix(cand, q, p.window, cutoff, suffix)
        }
        _ => buf.dist_early_abandon(q, cand, p.window, cutoff),
    };
    if d.is_none() {
        stats.early_abandons += 1;
    }
    d
}

/// Finds the best match for a (normalized) query sequence.
pub(crate) fn best_match(
    base: &OnexBase,
    q: &[f64],
    mode: MatchMode,
    p: &SearchParams,
    ctx: &mut SearchCtx,
) -> Result<Match> {
    validate_query(q)?;
    base.ensure_nonempty()?;
    ctx.begin();
    match mode {
        MatchMode::Exact(len) => best_match_at_length(base, q, len, None, p, ctx),
        MatchMode::Any => best_match_any(base, q, p, ctx),
    }
}

/// Top-`k` most similar subsequences. Within the selected group(s) every
/// member is evaluated (no walk cut-off) so the ranking is complete for
/// the explored groups; the paper's `getKSim` likewise reads the selected
/// group's LSI.
pub(crate) fn top_k(
    base: &OnexBase,
    q: &[f64],
    mode: MatchMode,
    k: usize,
    p: &SearchParams,
    ctx: &mut SearchCtx,
) -> Result<Vec<Match>> {
    validate_query(q)?;
    base.ensure_nonempty()?;
    ctx.begin();
    if k == 0 {
        return Ok(Vec::new());
    }
    let mut all: Vec<Match> = Vec::new();
    // The k smallest ranking keys seen so far, ascending. Once full, the
    // worst key becomes the member cutoff for the cascade: a member whose
    // lower bound strictly exceeds it cannot enter the final top-k (ties
    // are never pruned, preserving the subseq tie-break), so the truncated
    // ranking is identical to the unpruned scan's.
    let mut topk_keys: Vec<f64> = Vec::with_capacity(k);
    for len in length_schedule(base, q.len(), mode) {
        let Some(idx) = base.length_index(len) else {
            if matches!(mode, MatchMode::Exact(_)) {
                return Err(OnexError::NoGroupsForLength(len));
            }
            continue;
        };
        let slab = base.slab(len).ok_or(OnexError::NoGroupsForLength(len))?;
        ctx.stats.lengths_visited += 1;
        let sym = base.sym_index(len);
        let choices = best_reps(q, idx, slab, sym, p.explore_top_groups.max(1), p, ctx);
        let scale = 2.0 * q.len().max(len) as f64;
        let qualified = choices.iter().any(|c| c.raw / scale <= p.st / 2.0);
        let units: usize = choices.iter().map(|c| slab.members(c.local).len()).sum();
        let workers = plan_workers(p.query_threads, p.budgeted(), units);
        let striped_ok = workers > 1
            && topk_members_striped(
                base,
                q,
                slab,
                &choices,
                k,
                scale,
                &mut topk_keys,
                &mut all,
                p,
                ctx,
                workers,
            );
        if !striped_ok {
            for c in &choices {
                let norm = c.raw / scale;
                for (mi, &(r, _)) in slab.members(c.local).iter().enumerate() {
                    if ctx.out_of_budget(p) {
                        break;
                    }
                    let vals = base.dataset().subseq_unchecked(r);
                    // The k-th-best cutoff (and with it any member-level
                    // pruning or abandoning) belongs to the cascade; without
                    // it the member scan is the pre-cascade full evaluation.
                    let cutoff = if !(p.lb_pruning && p.cascade) || topk_keys.len() < k {
                        f64::INFINITY
                    } else if p.rank_normalized {
                        topk_keys[k - 1] * scale
                    } else {
                        topk_keys[k - 1]
                    };
                    let Some(raw) = cascade_eval(
                        q,
                        vals,
                        None,
                        Some(slab.member_paa_row(c.local, mi)),
                        None,
                        cutoff,
                        p,
                        ctx,
                        Candidate::Member,
                    ) else {
                        continue;
                    };
                    let dist = raw / scale;
                    let key = if p.rank_normalized { dist } else { raw };
                    let pos = topk_keys.partition_point(|&x| x <= key);
                    if pos < k {
                        if topk_keys.len() == k {
                            topk_keys.pop();
                        }
                        topk_keys.insert(pos, key);
                    }
                    all.push(Match {
                        subseq: r,
                        dist,
                        raw_dtw: raw,
                        group: c.group,
                        rep_dist: norm,
                    });
                }
            }
        }
        if ctx.truncated {
            break;
        }
        if matches!(mode, MatchMode::Any)
            && qualified
            && p.stop_at_first_qualifying
            && all.len() >= k
        {
            break;
        }
    }
    if p.rank_normalized {
        all.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.subseq.cmp(&b.subseq)));
    } else {
        all.sort_by(|a, b| {
            a.raw_dtw
                .total_cmp(&b.raw_dtw)
                .then(a.subseq.cmp(&b.subseq))
        });
    }
    all.truncate(k);
    if all.is_empty() {
        return Err(if ctx.truncated {
            OnexError::BudgetExhausted
        } else {
            OnexError::EmptyBase
        });
    }
    Ok(all)
}

/// Range query — the paper's Q1 with `WHERE Sim <= ST` instead of `min`:
/// every subsequence whose normalized DTW to the query is within `st`.
///
/// Candidate groups are found by the Lemma-2 certificate: a
/// representative within `ST/2` (normalized DTW) guarantees *all* its
/// members are within `ST`. With `verify = false` the certified members
/// are returned as-is — no member-level DTW at all, the paper's fast
/// path, sound under the theory's unconstrained window. **On that
/// certified path every member's [`Match::dist`] and [`Match::raw_dtw`]
/// are rep-derived**: they carry the *representative's* normalized/raw
/// DTW to the query (equal to [`Match::rep_dist`] in normalized form),
/// because the member itself was never evaluated. With `verify = true`
/// each member's true DTW is computed (through the lower-bound cascade,
/// with `st` as the cutoff) and filtered to `≤ st`, which also finds
/// members of *uncertified* boundary groups (reps in `(ST/2, ST·1.5]`)
/// that still qualify individually — and then `raw_dtw` is the member's
/// own.
pub(crate) fn within_threshold(
    base: &OnexBase,
    q: &[f64],
    mode: MatchMode,
    verify: bool,
    p: &SearchParams,
    ctx: &mut SearchCtx,
) -> Result<Vec<Match>> {
    validate_query(q)?;
    base.ensure_nonempty()?;
    ctx.begin();
    let st = p.st;
    if let MatchMode::Exact(len) = mode {
        if base.length_index(len).is_none() {
            return Err(OnexError::NoGroupsForLength(len));
        }
    }
    let mut out = Vec::new();
    'lengths: for len in length_schedule(base, q.len(), mode) {
        let Some(idx) = base.length_index(len) else {
            continue;
        };
        let slab = base.slab(len).ok_or(OnexError::NoGroupsForLength(len))?;
        ctx.stats.lengths_visited += 1;
        let norm = 2.0 * q.len().max(len) as f64;
        // Reps beyond 1.5·ST can contain no qualifying member even
        // under verification (member ≤ ST and Lemma-2-style bounds
        // keep everything near the rep), so bound the scan there.
        let scan_limit = if verify { st * 1.5 } else { st / 2.0 };
        // The rep cutoff is fixed for the whole length, so the symbolic
        // index (where applicable) can mark its certified skips up front.
        let scan_cutoff = scan_limit * norm;
        let masked = match symindex_applicable(base.sym_index(len), q, slab, p) {
            Some(sym) if scan_cutoff.is_finite() => {
                mark_index_skips(sym, q, scan_cutoff, p, ctx);
                true
            }
            _ => false,
        };
        if p.symindex && !masked {
            ctx.stats.index_fallbacks += 1;
        }
        // Every cutoff in this scan is fixed for the whole length (no
        // running best to share), so the striped path is not just
        // result-identical but *counter*-identical to the sequential one:
        // each group's evaluation sees exactly the same cutoffs either way.
        let workers = plan_workers(p.query_threads, p.budgeted(), idx.group_count());
        if workers > 1
            && range_scan_striped(
                base, q, slab, idx, verify, st, norm, scan_limit, masked, &mut out, p, ctx, workers,
            )
        {
            continue;
        }
        for local in idx.median_out_order() {
            if ctx.out_of_budget(p) {
                break 'lengths;
            }
            if masked && ctx.skip[local] {
                // sound: certified by the bucket bound at exactly this
                // scan's cutoff — tier 0 would prune this rep with the
                // same strictly-greater test (see SymIndex::mark_skips),
                // so no member of the group can be certified or survive
                // verification; charge the identical counters and skip.
                charge_index_skip(&mut ctx.stats);
                continue;
            }
            let gid = idx.group_ids[local];
            ctx.stats.reps_examined += 1;
            let Some(raw) = cascade_eval(
                q,
                slab.rep_row(local),
                slab.envelope_ref(local),
                slab.is_finalized(local).then(|| slab.paa_rep_row(local)),
                slab.paa_envelope_ref(local),
                scan_limit * norm,
                p,
                ctx,
                Candidate::Rep,
            ) else {
                continue;
            };
            let rep_norm = raw / norm;
            if rep_norm <= st / 2.0 && !verify {
                // Certified: every member qualifies (Lemma 2). `dist` and
                // `raw_dtw` are the representative's — see the fn docs.
                for &(r, _) in slab.members(local) {
                    out.push(Match {
                        subseq: r,
                        dist: rep_norm,
                        raw_dtw: raw,
                        group: gid,
                        rep_dist: rep_norm,
                    });
                }
            } else if rep_norm <= scan_limit && verify {
                for (idx, &(r, _)) in slab.members(local).iter().enumerate() {
                    if ctx.out_of_budget(p) {
                        break 'lengths;
                    }
                    let vals = base.dataset().subseq_unchecked(r);
                    let Some(member_raw) = cascade_eval(
                        q,
                        vals,
                        None,
                        Some(slab.member_paa_row(local, idx)),
                        None,
                        st * norm,
                        p,
                        ctx,
                        Candidate::Member,
                    ) else {
                        continue;
                    };
                    let d = member_raw / norm;
                    if d <= st {
                        out.push(Match {
                            subseq: r,
                            dist: d,
                            raw_dtw: member_raw,
                            group: gid,
                            rep_dist: rep_norm,
                        });
                    }
                }
            }
        }
    }
    out.sort_by(|a, b| a.dist.total_cmp(&b.dist).then(a.subseq.cmp(&b.subseq)));
    Ok(out)
}

/// The striped-parallel group scan of [`within_threshold`] for one
/// length. Unlike the best-match and top-k scans there is no evolving
/// cutoff here — the rep scan bound (`scan_limit·norm`) and the member
/// verification bound (`st·norm`) are fixed for the whole length, and the
/// certified-skip mask (when engaged) was marked up front at that same
/// fixed bound — so each group's evaluation is completely independent and
/// the striped scan reproduces the sequential scan's matches *and*
/// counters exactly at any worker count. Matches are appended in worker
/// order; the caller's total-order sort on `(dist, subseq)` erases the
/// difference from the sequential append order.
///
/// Returns `false` — with `ctx.degraded` latched, no matches appended and
/// no counters charged — when a worker panicked; the caller must then run
/// the sequential twin for this length, which reproduces the striped
/// scan's would-be answer exactly.
#[allow(clippy::too_many_arguments)]
fn range_scan_striped(
    base: &OnexBase,
    q: &[f64],
    slab: &LengthSlab,
    idx: &LengthIndex,
    verify: bool,
    st: f64,
    norm: f64,
    scan_limit: f64,
    masked: bool,
    out: &mut Vec<Match>,
    p: &SearchParams,
    ctx: &mut SearchCtx,
    workers: usize,
) -> bool {
    let order: Vec<usize> = idx.median_out_order().collect();
    let order = order.as_slice();
    // The mask was filled in the caller's context; lend it to the workers
    // read-only and put it back afterwards (it is per-length scratch).
    let skip = std::mem::take(&mut ctx.skip);
    let skip_ref = skip.as_slice();
    let results = fan_stripes(workers, |w| {
        let mut wctx = SearchCtx::default();
        let mut local_out: Vec<Match> = Vec::new();
        for &local in order.iter().skip(w).step_by(workers) {
            if masked && skip_ref[local] {
                // sound: identical to the sequential scan — the mask was
                // certified at exactly this scan's fixed cutoff, so tier 0
                // would prune this rep with the same strictly-greater
                // test; no member of the group can be certified or survive
                // verification.
                charge_index_skip(&mut wctx.stats);
                continue;
            }
            let gid = idx.group_ids[local];
            wctx.stats.reps_examined += 1;
            let Some(raw) = cascade_eval(
                q,
                slab.rep_row(local),
                slab.envelope_ref(local),
                slab.is_finalized(local).then(|| slab.paa_rep_row(local)),
                slab.paa_envelope_ref(local),
                scan_limit * norm,
                p,
                &mut wctx,
                Candidate::Rep,
            ) else {
                continue;
            };
            let rep_norm = raw / norm;
            if rep_norm <= st / 2.0 && !verify {
                // Certified: every member qualifies (Lemma 2); `dist` and
                // `raw_dtw` are the representative's, as in the sequential
                // scan.
                for &(r, _) in slab.members(local) {
                    local_out.push(Match {
                        subseq: r,
                        dist: rep_norm,
                        raw_dtw: raw,
                        group: gid,
                        rep_dist: rep_norm,
                    });
                }
            } else if rep_norm <= scan_limit && verify {
                for (mi, &(r, _)) in slab.members(local).iter().enumerate() {
                    let vals = base.dataset().subseq_unchecked(r);
                    let Some(member_raw) = cascade_eval(
                        q,
                        vals,
                        None,
                        Some(slab.member_paa_row(local, mi)),
                        None,
                        st * norm,
                        p,
                        &mut wctx,
                        Candidate::Member,
                    ) else {
                        continue;
                    };
                    let d = member_raw / norm;
                    if d <= st {
                        local_out.push(Match {
                            subseq: r,
                            dist: d,
                            raw_dtw: member_raw,
                            group: gid,
                            rep_dist: rep_norm,
                        });
                    }
                }
            }
        }
        (local_out, wctx)
    });
    ctx.skip = skip;
    let Some(results) = results else {
        // A worker panicked: every partial result is discarded and the
        // caller re-runs this length sequentially.
        ctx.degraded = true;
        return false;
    };
    for (local_out, wctx) in results {
        out.extend(local_out);
        ctx.stats.merge_counts(&wctx.stats);
        ctx.truncated |= wctx.truncated;
    }
    true
}

fn best_match_at_length(
    base: &OnexBase,
    q: &[f64],
    len: usize,
    cutoff_raw: Option<f64>,
    p: &SearchParams,
    ctx: &mut SearchCtx,
) -> Result<Match> {
    let idx = base
        .length_index(len)
        .ok_or(OnexError::NoGroupsForLength(len))?;
    let slab = base.slab(len).ok_or(OnexError::NoGroupsForLength(len))?;
    ctx.stats.lengths_visited += 1;
    let top = p.explore_top_groups.max(1);
    let choices = best_reps(q, idx, slab, base.sym_index(len), top, p, ctx);
    let mut best: Option<Match> = None;
    let mut cutoff = cutoff_raw.unwrap_or(f64::INFINITY);
    for c in &choices {
        let rep_norm = c.raw / (2.0 * q.len().max(len) as f64);
        if let Some((r, raw)) = best_in_group(base, q, slab, c.local, c.raw, cutoff, p, ctx) {
            if raw < cutoff {
                cutoff = raw;
                best = Some(Match {
                    subseq: r,
                    dist: raw / (2.0 * q.len().max(len) as f64),
                    raw_dtw: raw,
                    group: c.group,
                    rep_dist: rep_norm,
                });
            }
        }
    }
    best.ok_or(if ctx.truncated {
        OnexError::BudgetExhausted
    } else {
        OnexError::NoGroupsForLength(len)
    })
}

/// The lengths one query visits: a single exact length or the §5.3
/// any-length order ([`OnexBase::lengths_query_order`]: query length
/// first, then decreasing to the smallest, then increasing above) —
/// allocation-free in both cases.
enum LengthSchedule<I> {
    One(std::iter::Once<usize>),
    Ordered(I),
}

impl<I: Iterator<Item = usize>> Iterator for LengthSchedule<I> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            LengthSchedule::One(it) => it.next(),
            LengthSchedule::Ordered(it) => it.next(),
        }
    }
}

fn length_schedule(
    base: &OnexBase,
    qlen: usize,
    mode: MatchMode,
) -> LengthSchedule<impl Iterator<Item = usize> + '_> {
    match mode {
        MatchMode::Exact(len) => LengthSchedule::One(std::iter::once(len)),
        MatchMode::Any => LengthSchedule::Ordered(base.lengths_query_order(qlen)),
    }
}

fn best_match_any(
    base: &OnexBase,
    q: &[f64],
    p: &SearchParams,
    ctx: &mut SearchCtx,
) -> Result<Match> {
    let rank_normalized = p.rank_normalized;
    let mut best: Option<Match> = None;
    for len in base.lengths_query_order(q.len()) {
        if ctx.out_of_budget(p) {
            break;
        }
        // Carry the best-so-far across lengths as a raw-DTW cutoff for
        // early abandoning. Under raw ranking it transfers directly;
        // under normalized ranking it is rescaled by this length's
        // normalization factor.
        let cutoff_raw = best.as_ref().map(|b| {
            if rank_normalized {
                b.dist * 2.0 * q.len().max(len) as f64
            } else {
                b.raw_dtw
            }
        });
        let found = match best_match_at_length(base, q, len, cutoff_raw, p, ctx) {
            Ok(m) => m,
            Err(OnexError::NoGroupsForLength(_)) => continue,
            // Budget ran out inside this length: keep the best-so-far from
            // earlier lengths (anytime semantics); the final ok_or reports
            // exhaustion only when nothing was found at all.
            Err(OnexError::BudgetExhausted) => break,
            Err(e) => return Err(e),
        };
        let better = best.as_ref().is_none_or(|b| {
            if rank_normalized {
                found.dist < b.dist
            } else {
                found.raw_dtw < b.raw_dtw
            }
        });
        if better {
            best = Some(found);
        }
        // §5.3: stop extending the length search once a representative
        // within ST/2 has been found at some length.
        if p.stop_at_first_qualifying {
            if let Some(b) = &best {
                if b.rep_dist <= p.st / 2.0 {
                    break;
                }
            }
        }
    }
    best.ok_or(if ctx.truncated {
        OnexError::BudgetExhausted
    } else {
        OnexError::EmptyBase
    })
}

/// Best `top` representatives of a length by raw DTW to the query, in
/// median-sum order, each run through the full [`cascade_eval`] pipeline
/// against the running `top`-th-best cutoff. The representative vectors
/// and envelope planes are read straight off the length's columnar slab —
/// contiguous rows, no per-group pointer chase.
fn best_reps(
    q: &[f64],
    idx: &LengthIndex,
    slab: &LengthSlab,
    sym: Option<&SymIndex>,
    top: usize,
    p: &SearchParams,
    ctx: &mut SearchCtx,
) -> Vec<RepChoice> {
    let workers = plan_workers(p.query_threads, p.budgeted(), idx.group_count());
    if workers > 1 {
        if let Some(kept) = best_reps_striped(q, idx, slab, sym, top, p, ctx, workers) {
            return kept;
        }
        // A worker panicked: fall through to the sequential scan below,
        // which recomputes the choice set from scratch.
    }
    let mut kept: Vec<RepChoice> = Vec::with_capacity(top + 1);
    let mut cutoff = f64::INFINITY;
    let sym = symindex_applicable(sym, q, slab, p);
    let mut masked = false;
    for local in idx.median_out_order() {
        if ctx.out_of_budget(p) {
            break;
        }
        // Engage the index once, at the first finite cutoff. The mask is
        // *not* recomputed as the cutoff tightens: a group certified at
        // cutoff `C` has its tier-0 bound above `C²·(1+margin)`, which
        // only grows relative to any later `C' ≤ C` — tier 0 would still
        // prune it with the same strictly-greater test, so a stale mask
        // stays sound (it merely skips fewer groups than a fresh one).
        if !masked && cutoff.is_finite() {
            if let Some(sym) = sym {
                mark_index_skips(sym, q, cutoff, p, ctx);
                masked = true;
            }
        }
        if masked && ctx.skip[local] {
            // sound: the mask only marks groups whose bucket bound — a
            // bit-for-bit lower bound on the group's own tier-0 bound,
            // see SymIndex::mark_skips — exceeded tier 0's pruning limit
            // at a cutoff no tighter than the current one. Tier 0 would
            // prune this rep right here; charge the identical counters
            // and move on without touching the kept set or the cutoff.
            charge_index_skip(&mut ctx.stats);
            continue;
        }
        let gid = idx.group_ids[local];
        let rep = slab.rep_row(local);
        ctx.stats.reps_examined += 1;
        let Some(raw) = cascade_eval(
            q,
            rep,
            slab.envelope_ref(local),
            slab.is_finalized(local).then(|| slab.paa_rep_row(local)),
            slab.paa_envelope_ref(local),
            cutoff,
            p,
            ctx,
            Candidate::Rep,
        ) else {
            continue;
        };
        if raw >= cutoff && kept.len() >= top {
            continue;
        }
        kept.push(RepChoice {
            group: gid,
            local,
            raw,
        });
        kept.sort_by(|a, b| a.raw.total_cmp(&b.raw));
        kept.truncate(top);
        if let [.., last] = kept.as_slice() {
            if kept.len() == top {
                cutoff = last.raw;
            }
        }
    }
    if p.symindex && !masked {
        ctx.stats.index_fallbacks += 1;
    }
    kept
}

/// The striped-parallel twin of [`best_reps`]: worker `w` of `W` scans
/// median-sum-order positions `w, w+W, …` with its own [`SearchCtx`],
/// keeping its local `top` best and publishing its `top`-th-best raw DTW
/// to a [`SharedCutoff`] so every worker prunes against (an upper bound
/// on) the global `top`-th best. The final choices are the canonical
/// `top` smallest by `(raw, median-sum rank)` over all survivors —
/// exactly the set and order the sequential scan's stable
/// insert-sort-truncate loop produces, because (a) the shared cutoff is
/// always ≥ the final `top`-th-best raw, so no true finalist is ever
/// pruned, (b) survivors carry exact DTW values, and (c) the sequential
/// loop's arrival order *is* the median-sum rank. Each worker engages the
/// symbolic index independently at its first finite cutoff (the mask
/// stays sound for any tighter cutoff, as in the sequential scan);
/// per-worker counters are merged by field-wise sum.
///
/// Returns `None` — with `ctx.degraded` latched, no counters charged —
/// when a worker panicked; the caller must then run the sequential twin.
#[allow(clippy::too_many_arguments)]
fn best_reps_striped(
    q: &[f64],
    idx: &LengthIndex,
    slab: &LengthSlab,
    sym: Option<&SymIndex>,
    top: usize,
    p: &SearchParams,
    ctx: &mut SearchCtx,
    workers: usize,
) -> Option<Vec<RepChoice>> {
    let order: Vec<usize> = idx.median_out_order().collect();
    let order = order.as_slice();
    let sym = symindex_applicable(sym, q, slab, p);
    let shared = SharedCutoff::new(f64::INFINITY);
    let shared = &shared;
    let results = fan_stripes(workers, |w| {
        let mut wctx = SearchCtx::default();
        // Local finalists as (raw, global median-sum rank, choice).
        let mut kept: Vec<(f64, usize, RepChoice)> = Vec::with_capacity(top + 1);
        let mut masked = false;
        for rank in (w..order.len()).step_by(workers) {
            let local = order[rank];
            let cutoff = shared.get();
            if !masked && cutoff.is_finite() {
                if let Some(sym) = sym {
                    mark_index_skips(sym, q, cutoff, p, &mut wctx);
                    masked = true;
                }
            }
            if masked && wctx.skip[local] {
                // sound: same argument as the sequential scan — the mask
                // was certified at a cutoff no tighter than the shared
                // cutoff ever gets again (it is monotone decreasing), so
                // tier 0 would still prune this rep with its
                // strictly-greater test; its raw DTW provably exceeds the
                // final top-th best and it can be neither finalist nor tie.
                charge_index_skip(&mut wctx.stats);
                continue;
            }
            let gid = idx.group_ids[local];
            wctx.stats.reps_examined += 1;
            let Some(raw) = cascade_eval(
                q,
                slab.rep_row(local),
                slab.envelope_ref(local),
                slab.is_finalized(local).then(|| slab.paa_rep_row(local)),
                slab.paa_envelope_ref(local),
                cutoff,
                p,
                &mut wctx,
                Candidate::Rep,
            ) else {
                continue;
            };
            kept.push((
                raw,
                rank,
                RepChoice {
                    group: gid,
                    local,
                    raw,
                },
            ));
            kept.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            kept.truncate(top);
            if kept.len() == top {
                // Each worker's local top-th best is an upper bound on the
                // global one (its stripe alone already holds `top`
                // candidates at or below it), so the shared minimum over
                // workers is too — lowering the cutoff to it never prunes
                // a true finalist.
                shared.lower_to(kept[top - 1].0);
            }
        }
        (kept, wctx, masked)
    });
    let results = match results {
        Some(results) => results,
        None => {
            // A worker panicked: discard every partial finalist and fall
            // back to the sequential scan.
            ctx.degraded = true;
            return None;
        }
    };
    let mut merged: Vec<(f64, usize, RepChoice)> = Vec::new();
    let mut any_masked = false;
    for (kept, wctx, masked) in results {
        merged.extend(kept);
        ctx.stats.merge_counts(&wctx.stats);
        ctx.truncated |= wctx.truncated;
        any_masked |= masked;
    }
    if p.symindex && !any_masked {
        ctx.stats.index_fallbacks += 1;
    }
    merged.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    merged.truncate(top);
    Some(merged.into_iter().map(|(_, _, c)| c).collect())
}

/// The striped-parallel member scan of [`top_k`] for one length: the
/// `(choice, member)` pairs of all chosen groups are flattened into one
/// unit list and striped across workers, each with its own [`SearchCtx`].
/// The running k-th-best ranking key lives in a [`SharedTopK`] — workers
/// read its cached k-th key as the cascade cutoff (`+∞` until `k`
/// survivors exist, exactly the sequential rule) and admit survivors'
/// keys under its lock. Because ties with the k-th key are never pruned
/// and survivors carry exact values, the survivor set is a superset of
/// every member that can appear in the final ranking; the caller's
/// total-order sort on `(key, subseq)` plus `truncate(k)` then yields the
/// sequential result bit for bit. Survivors are appended to `all` in
/// worker order and per-worker counters merged by field-wise sum.
///
/// Returns `false` — with `ctx.degraded` latched, `topk_keys` restored to
/// its pre-call state, nothing appended to `all` and no counters charged
/// — when a worker panicked; the caller must then run the sequential twin
/// for this length.
#[allow(clippy::too_many_arguments)]
fn topk_members_striped(
    base: &OnexBase,
    q: &[f64],
    slab: &LengthSlab,
    choices: &[RepChoice],
    k: usize,
    scale: f64,
    topk_keys: &mut Vec<f64>,
    all: &mut Vec<Match>,
    p: &SearchParams,
    ctx: &mut SearchCtx,
    workers: usize,
) -> bool {
    let mut units: Vec<(usize, usize)> = Vec::new();
    for (ci, c) in choices.iter().enumerate() {
        for mi in 0..slab.members(c.local).len() {
            units.push((ci, mi));
        }
    }
    let units = units.as_slice();
    // Keep a pristine copy of the carried keys: if a worker panics, the
    // shared set may hold a partial admixture of this length's keys and
    // must be thrown away wholesale before the sequential re-scan.
    let saved_keys = topk_keys.clone();
    // Carry the keys accumulated at earlier lengths into the shared set so
    // the cross-length cutoff semantics match the sequential scan.
    let shared = SharedTopK::new(std::mem::take(topk_keys), k);
    let results = fan_stripes(workers, |w| {
        let mut wctx = SearchCtx::default();
        let mut local: Vec<Match> = Vec::new();
        for &(ci, mi) in units.iter().skip(w).step_by(workers) {
            let c = &choices[ci];
            let (r, _) = slab.members(c.local)[mi];
            let vals = base.dataset().subseq_unchecked(r);
            let cutoff = if !(p.lb_pruning && p.cascade) {
                f64::INFINITY
            } else if p.rank_normalized {
                shared.kth() * scale
            } else {
                shared.kth()
            };
            let Some(raw) = cascade_eval(
                q,
                vals,
                None,
                Some(slab.member_paa_row(c.local, mi)),
                None,
                cutoff,
                p,
                &mut wctx,
                Candidate::Member,
            ) else {
                continue;
            };
            let dist = raw / scale;
            let key = if p.rank_normalized { dist } else { raw };
            shared.offer(key);
            local.push(Match {
                subseq: r,
                dist,
                raw_dtw: raw,
                group: c.group,
                rep_dist: c.raw / scale,
            });
        }
        (local, wctx)
    });
    let Some(results) = results else {
        // A worker panicked: restore the carried keys exactly as they
        // were and let the caller re-run this length sequentially.
        *topk_keys = saved_keys;
        ctx.degraded = true;
        return false;
    };
    for (local, wctx) in results {
        all.extend(local);
        ctx.stats.merge_counts(&wctx.stats);
        ctx.truncated |= wctx.truncated;
    }
    *topk_keys = shared.into_keys();
    true
}

/// Best member inside a group (§5.3, third optimization): members are
/// sorted by raw ED to the representative; start at the member whose ED
/// is closest to the query↔representative DTW and walk outward
/// alternately, running each member through the [`cascade_eval`] pipeline
/// against the best so far and stopping a direction after `walk_patience`
/// consecutive non-improvements (an LB-pruned member is provably
/// non-improving, so pruning never changes the walk's trajectory).
/// `exhaustive_group_search` evaluates every member.
#[allow(clippy::too_many_arguments)]
fn best_in_group(
    base: &OnexBase,
    q: &[f64],
    slab: &LengthSlab,
    local: usize,
    rep_raw_dtw: f64,
    initial_cutoff: f64,
    p: &SearchParams,
    ctx: &mut SearchCtx,
) -> Option<(SubseqRef, f64)> {
    let members = slab.members(local);
    if members.is_empty() {
        return None;
    }
    let mut best: Option<(SubseqRef, f64)> = None;
    let mut cutoff = initial_cutoff;
    let probe = |ctx: &mut SearchCtx,
                 i: usize,
                 best: &mut Option<(SubseqRef, f64)>,
                 cutoff: &mut f64|
     -> bool {
        if ctx.out_of_budget(p) {
            return false;
        }
        let (r, _) = members[i];
        let vals = base.dataset().subseq_unchecked(r);
        // A probe "improves" only on a strict beat of the running cutoff.
        // This is deliberately the *only* signal: LB-pruned, abandoned,
        // and completed-but-not-better evaluations all report false, so
        // the patience counters — and with them the walk's trajectory —
        // are identical whether or not pruning is enabled (a pruned
        // member has DTW > cutoff, provably not an improvement). A
        // candidate at or above the carried-in cutoff is never recorded:
        // the caller discards such group bests anyway. Note this is a
        // (slight, deliberate) heuristic change from the pre-cascade
        // engine, which reset patience on a group's first *completed*
        // member even at or above the carried cutoff — a signal a pruned
        // evaluation cannot reproduce, so it had to go for pruning to be
        // trajectory-neutral. The walk was always a patience-bounded
        // heuristic; which members it probes is not part of any contract.
        match cascade_eval(
            q,
            vals,
            None,
            Some(slab.member_paa_row(local, i)),
            None,
            *cutoff,
            p,
            ctx,
            Candidate::Member,
        ) {
            Some(raw) if raw < *cutoff => {
                *best = Some((r, raw));
                *cutoff = raw;
                true
            }
            _ => false,
        }
    };

    if p.exhaustive_group_search {
        for i in 0..members.len() {
            probe(ctx, i, &mut best, &mut cutoff);
        }
        return best;
    }

    // Binary-search the ED-sorted member array for the position whose ED
    // to the representative is closest to DTW(q, rep).
    let start = match members.binary_search_by(|&(_, d)| d.total_cmp(&rep_raw_dtw)) {
        Ok(i) => i,
        Err(i) => {
            if i == 0 {
                0
            } else if i >= members.len() {
                members.len() - 1
            } else {
                // pick the closer neighbour
                let below = rep_raw_dtw - members[i - 1].1;
                let above = members[i].1 - rep_raw_dtw;
                if below <= above {
                    i - 1
                } else {
                    i
                }
            }
        }
    };
    probe(ctx, start, &mut best, &mut cutoff);
    let patience = p.walk_patience.max(1);
    let (mut left, mut right) = (start, start);
    let mut left_bad = 0usize;
    let mut right_bad = 0usize;
    let mut go_left = true;
    loop {
        if ctx.truncated {
            break;
        }
        let can_left = left > 0 && left_bad < patience;
        let can_right = right + 1 < members.len() && right_bad < patience;
        if !can_left && !can_right {
            break;
        }
        let take_left = match (can_left, can_right) {
            (true, true) => go_left,
            (true, false) => true,
            _ => false,
        };
        go_left = !go_left;
        if take_left {
            left -= 1;
            if probe(ctx, left, &mut best, &mut cutoff) {
                left_bad = 0;
            } else {
                left_bad += 1;
            }
        } else {
            right += 1;
            if probe(ctx, right, &mut best, &mut cutoff) {
                right_bad = 0;
            } else {
                right_bad += 1;
            }
        }
    }
    best
}

/// Legacy reusable similarity-query processor over one base. Owns one
/// `SearchCtx` (DTW scratch buffer + counters), so repeated queries
/// allocate nothing — but the `&mut self` receiver serializes callers.
///
/// Deprecated: [`crate::engine::Explorer`] answers the same queries (and
/// the other classes) through one typed request/response API, from `&self`,
/// so one instance serves any number of threads. This type now forwards to
/// the same search core and returns bit-identical results.
#[deprecated(
    since = "0.2.0",
    note = "use onex_core::engine::Explorer — one typed, thread-safe API for all query classes"
)]
pub struct SimilarityQuery<'a> {
    base: &'a OnexBase,
    ctx: SearchCtx,
    /// Counters from the most recent query.
    pub stats: QueryStats,
}

#[allow(deprecated)]
impl<'a> SimilarityQuery<'a> {
    /// Creates a processor bound to a base.
    pub fn new(base: &'a OnexBase) -> Self {
        SimilarityQuery {
            base,
            ctx: SearchCtx::default(),
            stats: QueryStats::default(),
        }
    }

    /// Finds the best match for a (normalized) query sequence. `st` overrides
    /// the base's similarity threshold for the qualifying-representative test
    /// (the `WHERE Sim <= ST` clause); `None` uses the build-time threshold.
    pub fn best_match(&mut self, q: &[f64], mode: MatchMode, st: Option<f64>) -> Result<Match> {
        let p = SearchParams::from_config(self.base.config(), st);
        let out = best_match(self.base, q, mode, &p, &mut self.ctx);
        self.stats = self.ctx.stats;
        out
    }

    /// Top-`k` most similar subsequences; see the module-level `top_k`.
    pub fn top_k(
        &mut self,
        q: &[f64],
        mode: MatchMode,
        k: usize,
        st: Option<f64>,
    ) -> Result<Vec<Match>> {
        let p = SearchParams::from_config(self.base.config(), st);
        let out = top_k(self.base, q, mode, k, &p, &mut self.ctx);
        self.stats = self.ctx.stats;
        out
    }

    /// Range query; see the module-level `within_threshold`.
    pub fn within_threshold(
        &mut self,
        q: &[f64],
        mode: MatchMode,
        st: Option<f64>,
        verify: bool,
    ) -> Result<Vec<Match>> {
        let p = SearchParams::from_config(self.base.config(), st);
        let out = within_threshold(self.base, q, mode, verify, &p, &mut self.ctx);
        self.stats = self.ctx.stats;
        out
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::{OnexBase, OnexConfig};
    use onex_dist::{dtw_normalized, Window};
    use onex_ts::{synth, Dataset, TimeSeries};

    fn base() -> OnexBase {
        let d = synth::sine_mix(8, 24, 2, 11);
        OnexBase::build(&d, OnexConfig::default()).unwrap()
    }

    #[test]
    fn finds_exact_in_dataset_subsequence() {
        let b = base();
        // Take a subsequence that is literally in the dataset; the best
        // match at its own length must have distance 0 (itself) or at worst
        // the group-guarantee bound.
        let q: Vec<f64> = b.dataset().get(0).unwrap().values()[3..15].to_vec();
        let mut proc = SimilarityQuery::new(&b);
        let m = proc.best_match(&q, MatchMode::Exact(12), None).unwrap();
        assert_eq!(m.subseq.len, 12);
        // The query itself lives in some group of length 12; its own group's
        // representative is within ST/2, so the retrieved distance is small.
        assert!(m.dist <= b.config().st, "dist {}", m.dist);
        assert!(proc.stats.reps_examined > 0);
    }

    #[test]
    fn self_query_returns_zero_distance_with_exhaustive_search() {
        let d = synth::sine_mix(6, 16, 2, 3);
        let cfg = OnexConfig {
            exhaustive_group_search: true,
            ..OnexConfig::default()
        };
        let b = OnexBase::build(&d, cfg).unwrap();
        let q: Vec<f64> = b.dataset().get(2).unwrap().values()[1..9].to_vec();
        let mut proc = SimilarityQuery::new(&b);
        let m = proc.best_match(&q, MatchMode::Exact(8), None).unwrap();
        // The query is a member of some group; exhaustive search inside the
        // best group finds either itself (0) or something at least as close
        // to the rep — distance must be tiny.
        assert!(m.raw_dtw <= 1e-9, "raw {}", m.raw_dtw);
    }

    #[test]
    fn any_length_query_returns_best_normalized() {
        let b = base();
        let q: Vec<f64> = b.dataset().get(1).unwrap().values()[0..10].to_vec();
        let mut proc = SimilarityQuery::new(&b);
        let m = proc.best_match(&q, MatchMode::Any, None).unwrap();
        assert!(m.dist.is_finite());
        // verify the reported normalized distance is consistent
        let vals = b.dataset().subseq(m.subseq).unwrap();
        let expect = dtw_normalized(&q, vals, b.config().window);
        assert!((m.dist - expect).abs() < 1e-9);
    }

    #[test]
    fn exact_mode_rejects_unknown_length() {
        let b = base();
        let mut proc = SimilarityQuery::new(&b);
        let err = proc
            .best_match(&[0.1, 0.2], MatchMode::Exact(999), None)
            .unwrap_err();
        assert_eq!(err, OnexError::NoGroupsForLength(999));
    }

    #[test]
    fn invalid_queries_rejected() {
        let b = base();
        let mut proc = SimilarityQuery::new(&b);
        assert!(proc.best_match(&[], MatchMode::Any, None).is_err());
        assert!(proc
            .best_match(&[f64::NAN, 0.0], MatchMode::Any, None)
            .is_err());
    }

    #[test]
    fn top_k_is_sorted_and_bounded() {
        let b = base();
        let q: Vec<f64> = b.dataset().get(0).unwrap().values()[0..12].to_vec();
        let mut proc = SimilarityQuery::new(&b);
        let ms = proc.top_k(&q, MatchMode::Exact(12), 5, None).unwrap();
        assert!(!ms.is_empty() && ms.len() <= 5);
        for w in ms.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        assert_eq!(
            proc.top_k(&q, MatchMode::Exact(12), 0, None).unwrap(),
            vec![]
        );
    }

    #[test]
    fn walk_finds_planted_best_match() {
        // Hand-crafted dataset: many flat series at distinct levels plus one
        // series containing the query pattern. The planted pattern must be
        // retrieved even though its group has several members.
        let mut series: Vec<TimeSeries> = (0..6)
            .map(|i| TimeSeries::new(vec![0.1 * i as f64; 12]).unwrap())
            .collect();
        series.push(
            TimeSeries::new(vec![
                0.0, 0.1, 0.4, 0.9, 1.0, 0.9, 0.4, 0.1, 0.0, 0.0, 0.0, 0.0,
            ])
            .unwrap(),
        );
        let d = Dataset::new("planted", series);
        let cfg = OnexConfig {
            window: Window::Unconstrained,
            ..OnexConfig::default()
        };
        let b = OnexBase::build_prenormalized(d, cfg).unwrap();
        let q = vec![0.0, 0.1, 0.4, 0.9, 1.0, 0.9, 0.4, 0.1];
        let mut proc = SimilarityQuery::new(&b);
        let m = proc.best_match(&q, MatchMode::Exact(8), None).unwrap();
        assert_eq!(m.subseq.series, 6, "must come from the planted series");
        assert!(m.raw_dtw < 0.2, "raw {}", m.raw_dtw);
    }

    #[test]
    fn range_query_verified_results_are_within_threshold() {
        let d = synth::sine_mix(8, 20, 2, 13);
        let cfg = OnexConfig {
            window: Window::Unconstrained,
            ..OnexConfig::default()
        };
        let b = OnexBase::build(&d, cfg).unwrap();
        let q: Vec<f64> = b.dataset().get(0).unwrap().values()[2..12].to_vec();
        let mut proc = SimilarityQuery::new(&b);
        let st = 0.05;
        let verified = proc
            .within_threshold(&q, MatchMode::Exact(10), Some(st), true)
            .unwrap();
        assert!(!verified.is_empty(), "self-similar data yields matches");
        for m in &verified {
            assert!(m.dist <= st + 1e-9);
            // reported distances are true DTW̄
            let vals = b.dataset().subseq(m.subseq).unwrap();
            let expect = dtw_normalized(&q, vals, Window::Unconstrained);
            assert!((m.dist - expect).abs() < 1e-9);
        }
        // sorted ascending
        for w in verified.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
    }

    #[test]
    fn range_query_certified_set_honours_lemma2() {
        // Unverified (certified) members must actually lie within ST of the
        // query — the Lemma 2 guarantee made executable.
        let d = synth::sine_mix(6, 16, 2, 29);
        let cfg = OnexConfig {
            window: Window::Unconstrained,
            ..OnexConfig::default()
        };
        let b = OnexBase::build(&d, cfg).unwrap();
        let q: Vec<f64> = b.dataset().get(1).unwrap().values()[0..8].to_vec();
        let mut proc = SimilarityQuery::new(&b);
        let st = b.config().st;
        let certified = proc
            .within_threshold(&q, MatchMode::Exact(8), Some(st), false)
            .unwrap();
        for m in &certified {
            let vals = b.dataset().subseq(m.subseq).unwrap();
            let true_dist = dtw_normalized(&q, vals, Window::Unconstrained);
            assert!(
                true_dist <= st + 1e-9,
                "certified member at DTW̄ {true_dist} > ST {st}"
            );
        }
        // verification can only widen the result set (boundary groups) while
        // keeping every returned distance within ST.
        let verified = proc
            .within_threshold(&q, MatchMode::Exact(8), Some(st), true)
            .unwrap();
        assert!(verified.len() >= certified.len());
    }

    #[test]
    fn range_query_any_length_spans_lengths() {
        let b = base();
        let q: Vec<f64> = b.dataset().get(0).unwrap().values()[0..10].to_vec();
        let mut proc = SimilarityQuery::new(&b);
        let ms = proc
            .within_threshold(&q, MatchMode::Any, Some(0.2), true)
            .unwrap();
        let lengths: std::collections::HashSet<u32> = ms.iter().map(|m| m.subseq.len).collect();
        assert!(lengths.len() > 1, "expected matches across lengths");
    }

    #[test]
    fn query_stats_reflect_pruning_work() {
        // On a workload with many representatives, the LB cascade must
        // prune some of them and the stats must account for the work done.
        let d = synth::face(24, 32, 5);
        let b = OnexBase::build(&d, OnexConfig::default()).unwrap();
        let q: Vec<f64> = b.dataset().get(0).unwrap().values()[4..20].to_vec();
        let mut proc = SimilarityQuery::new(&b);
        let _ = proc.best_match(&q, MatchMode::Exact(16), None).unwrap();
        let s = proc.stats;
        assert!(s.reps_examined > 0);
        assert_eq!(s.lengths_visited, 1);
        assert!(
            s.rep_dtw_evals + s.reps_lb_pruned <= s.reps_examined,
            "{s:?}"
        );
        assert!(s.members_examined >= 1);
        assert_eq!(s.dtw_evals(), s.rep_dtw_evals + s.members_examined);
        // stats reset between queries
        let _ = proc.best_match(&q, MatchMode::Exact(16), None).unwrap();
        assert_eq!(proc.stats.lengths_visited, 1);
    }

    #[test]
    fn st_override_changes_qualification_not_best_match() {
        // The per-query ST only affects the qualifying/stop logic; the best
        // match itself is a min and must be identical.
        let b = base();
        let q: Vec<f64> = b.dataset().get(2).unwrap().values()[1..13].to_vec();
        let mut proc = SimilarityQuery::new(&b);
        let a = proc.best_match(&q, MatchMode::Exact(12), None).unwrap();
        let c = proc
            .best_match(&q, MatchMode::Exact(12), Some(0.9))
            .unwrap();
        assert_eq!(a.subseq, c.subseq);
        assert_eq!(a.raw_dtw, c.raw_dtw);
    }

    #[test]
    fn length_order_matches_paper_strategy() {
        let b = base();
        let order: Vec<usize> = b.lengths_query_order(10).collect();
        // starts at query length, descends to min, then ascends above
        assert_eq!(order[0], 10);
        let min_pos = order.iter().position(|&l| l == 2).unwrap();
        assert!(order[..=min_pos].windows(2).all(|w| w[0] > w[1]));
        assert!(order[min_pos + 1..].windows(2).all(|w| w[0] < w[1]));
        assert_eq!(order.len(), b.indexed_lengths().count());
    }

    #[test]
    fn lb_pruning_toggle_preserves_result() {
        // Disabling the LB cascade changes work done, never the answer.
        let d = synth::face(16, 32, 9);
        let b = OnexBase::build(&d, OnexConfig::default()).unwrap();
        let q: Vec<f64> = b.dataset().get(1).unwrap().values()[2..18].to_vec();
        let mut with = SearchCtx::default();
        let mut without = SearchCtx::default();
        // Pinned sequential: the rep_dtw_evals comparison below is a
        // cross-run counter identity, which only the sequential scan
        // guarantees (the shared parallel cutoff tightens with timing).
        let p_on = SearchParams {
            query_threads: 1,
            ..SearchParams::from_config(b.config(), None)
        };
        let p_off = SearchParams {
            lb_pruning: false,
            ..p_on
        };
        let m_on = best_match(&b, &q, MatchMode::Exact(16), &p_on, &mut with).unwrap();
        let m_off = best_match(&b, &q, MatchMode::Exact(16), &p_off, &mut without).unwrap();
        assert_eq!(m_on, m_off);
        assert_eq!(without.stats.reps_lb_pruned, 0);
        assert!(without.stats.rep_dtw_evals >= with.stats.rep_dtw_evals);
    }

    #[test]
    fn cascade_toggle_preserves_results_and_reduces_work() {
        // The three pruning levels — full cascade, representative-only LB,
        // no LB at all — must return identical answers for every Class I
        // query form, while total DTW evaluations are monotone in how much
        // of the pipeline is enabled.
        let d = synth::face(24, 32, 5);
        let b = OnexBase::build(&d, OnexConfig::default()).unwrap();
        // Pinned sequential: cross-run eval-count monotonicity is only
        // guaranteed by the deterministic sequential scan.
        let p_full = SearchParams {
            query_threads: 1,
            ..SearchParams::from_config(b.config(), None)
        };
        let p_rep_only = SearchParams {
            cascade: false,
            ..p_full
        };
        let p_off = SearchParams {
            lb_pruning: false,
            ..p_full
        };
        for (sid, lo, hi) in [(0usize, 4usize, 20usize), (5, 0, 16), (11, 8, 24)] {
            let q: Vec<f64> = b.dataset().get(sid).unwrap().values()[lo..hi].to_vec();
            for mode in [MatchMode::Exact(q.len()), MatchMode::Any] {
                let mut evals = Vec::new();
                let mut results = Vec::new();
                for p in [&p_full, &p_rep_only, &p_off] {
                    let mut ctx = SearchCtx::default();
                    results.push((
                        best_match(&b, &q, mode, p, &mut ctx).unwrap(),
                        top_k(&b, &q, mode, 5, p, &mut ctx).unwrap(),
                        within_threshold(&b, &q, mode, true, p, &mut ctx).unwrap(),
                    ));
                    let mut ctx = SearchCtx::default();
                    let _ = best_match(&b, &q, mode, p, &mut ctx).unwrap();
                    evals.push(ctx.stats.dtw_evals());
                }
                assert_eq!(results[0], results[1], "cascade vs rep-only, {mode:?}");
                assert_eq!(results[0], results[2], "cascade vs unpruned, {mode:?}");
                assert!(
                    evals[0] <= evals[1] && evals[1] <= evals[2],
                    "evals not monotone in pruning level: {evals:?}"
                );
            }
        }
    }

    #[test]
    fn cascade_tier_counters_are_consistent_and_fire() {
        let d = synth::face(24, 32, 5);
        let b = OnexBase::build(&d, OnexConfig::default()).unwrap();
        // Longer than the default paa_width so the sketch genuinely
        // reduces and tier 0 is active (it skips at w == len).
        let q: Vec<f64> = b.dataset().get(0).unwrap().values()[4..24].to_vec();
        let p = SearchParams::from_config(b.config(), None);
        let mut ctx = SearchCtx::default();
        let _ = top_k(&b, &q, MatchMode::Exact(20), 3, &p, &mut ctx).unwrap();
        let s = ctx.stats;
        // Per-tier counts always account exactly for the aggregate prunes.
        assert_eq!(
            s.lb_pruned(),
            s.pruned_paa + s.pruned_kim + s.pruned_keogh_eq + s.pruned_keogh_ec,
            "{s:?}"
        );
        assert_eq!(s.lb_pruned(), s.reps_lb_pruned + s.members_lb_pruned);
        // On this workload the pipeline does real work at both levels,
        // including the sketch tier in front of everything O(n).
        assert!(s.lb_keogh_evals > 0, "{s:?}");
        assert!(s.lb_pruned() > 0, "{s:?}");
        assert!(s.pruned_paa > 0, "tier 0 must fire on this workload: {s:?}");
        assert!(s.early_abandons <= s.dtw_evals());
        // And disabling LB zeroes every cascade counter.
        let mut off = SearchCtx::default();
        let p_off = SearchParams {
            lb_pruning: false,
            ..p
        };
        let _ = top_k(&b, &q, MatchMode::Exact(20), 3, &p_off, &mut off).unwrap();
        let s = off.stats;
        assert_eq!(s.lb_pruned(), 0);
        assert_eq!(s.lb_keogh_evals, 0);
        assert_eq!(
            s.pruned_paa + s.pruned_kim + s.pruned_keogh_eq + s.pruned_keogh_ec,
            0
        );
    }

    #[test]
    fn symindex_toggle_preserves_results_and_counters() {
        // The symbolic index only proposes skips that tier 0 would have
        // pruned anyway, so every query class must return identical
        // results AND identical cascade counters with the index on or
        // off — only the index's own counters may differ.
        let d = synth::face(24, 32, 5);
        let b = OnexBase::build(&d, OnexConfig::default()).unwrap();
        // Pinned sequential: the on/off cascade-counter equality below is a
        // cross-run identity only the sequential scan guarantees.
        let p_on = SearchParams {
            query_threads: 1,
            ..SearchParams::from_config(b.config(), None)
        };
        let p_off = SearchParams {
            symindex: false,
            ..p_on
        };
        let mut any_skips = false;
        for (sid, lo, hi) in [(0usize, 4usize, 24usize), (5, 0, 20), (11, 8, 28)] {
            let q: Vec<f64> = b.dataset().get(sid).unwrap().values()[lo..hi].to_vec();
            for mode in [MatchMode::Exact(q.len()), MatchMode::Any] {
                for op in 0..4usize {
                    let mut on = SearchCtx::default();
                    let mut off = SearchCtx::default();
                    match op {
                        0 => assert_eq!(
                            best_match(&b, &q, mode, &p_on, &mut on).unwrap(),
                            best_match(&b, &q, mode, &p_off, &mut off).unwrap(),
                            "best_match, {mode:?}"
                        ),
                        1 => assert_eq!(
                            top_k(&b, &q, mode, 5, &p_on, &mut on).unwrap(),
                            top_k(&b, &q, mode, 5, &p_off, &mut off).unwrap(),
                            "top_k, {mode:?}"
                        ),
                        2 => assert_eq!(
                            within_threshold(&b, &q, mode, true, &p_on, &mut on).unwrap(),
                            within_threshold(&b, &q, mode, true, &p_off, &mut off).unwrap(),
                            "range verified, {mode:?}"
                        ),
                        _ => assert_eq!(
                            within_threshold(&b, &q, mode, false, &p_on, &mut on).unwrap(),
                            within_threshold(&b, &q, mode, false, &p_off, &mut off).unwrap(),
                            "range certified, {mode:?}"
                        ),
                    }
                    let mut s = on.stats;
                    any_skips |= s.groups_skipped_by_index > 0;
                    s.index_probes = 0;
                    s.index_candidates = 0;
                    s.index_fallbacks = 0;
                    s.groups_skipped_by_index = 0;
                    assert_eq!(s, off.stats, "cascade counters, op {op}, {mode:?}");
                    assert_eq!(off.stats.groups_skipped_by_index, 0);
                    assert_eq!(off.stats.index_probes, 0);
                    assert_eq!(off.stats.index_fallbacks, 0);
                }
            }
        }
        assert!(any_skips, "the index must certify skips on this workload");
    }

    #[test]
    fn certified_range_query_reports_rep_derived_distances() {
        // Regression pin for the certified (verify = false) fast path:
        // each member's `dist`/`raw_dtw` are the *representative's* DTW to
        // the query (the member itself is never evaluated — Lemma 2
        // certifies it), so `dist == rep_dist` exactly and `raw_dtw`
        // recomputes as DTW(q, representative), not DTW(q, member).
        let d = synth::sine_mix(6, 16, 2, 29);
        let cfg = OnexConfig {
            window: Window::Unconstrained,
            ..OnexConfig::default()
        };
        let b = OnexBase::build(&d, cfg).unwrap();
        let q: Vec<f64> = b.dataset().get(1).unwrap().values()[0..8].to_vec();
        let mut proc = SimilarityQuery::new(&b);
        let certified = proc
            .within_threshold(&q, MatchMode::Exact(8), None, false)
            .unwrap();
        assert!(!certified.is_empty(), "self-similar data certifies groups");
        for m in &certified {
            assert_eq!(m.dist, m.rep_dist, "certified dist is the rep's");
            let rep = b.group(m.group).representative();
            let rep_raw = onex_dist::dtw(&q, rep, Window::Unconstrained);
            assert!(
                (m.raw_dtw - rep_raw).abs() < 1e-9,
                "certified raw_dtw {} must be the rep's raw DTW {}",
                m.raw_dtw,
                rep_raw
            );
        }
    }

    #[test]
    fn max_dtw_cap_truncates_but_returns() {
        let b = base();
        let q: Vec<f64> = b.dataset().get(0).unwrap().values()[0..12].to_vec();
        let p = SearchParams {
            max_dtw_evals: Some(2),
            ..SearchParams::from_config(b.config(), None)
        };
        let mut ctx = SearchCtx::default();
        let m = best_match(&b, &q, MatchMode::Exact(12), &p, &mut ctx);
        assert!(ctx.truncated, "a 2-eval budget must truncate this search");
        // Anytime semantics: whatever was found within budget is returned.
        if let Ok(m) = m {
            assert!(m.dist.is_finite());
        }
        assert!(ctx.stats.dtw_evals() <= 3, "{:?}", ctx.stats);
    }

    #[test]
    fn expired_deadline_latches_truncated() {
        let b = base();
        let q: Vec<f64> = b.dataset().get(0).unwrap().values()[0..12].to_vec();
        let p = SearchParams {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..SearchParams::from_config(b.config(), None)
        };
        let mut ctx = SearchCtx::default();
        let _ = best_match(&b, &q, MatchMode::Exact(12), &p, &mut ctx);
        assert!(ctx.truncated);
    }
}
