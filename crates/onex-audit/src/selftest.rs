//! Self-test: prove each lint rule actually fires.
//!
//! CI runs `onex-audit check` and requires exit 0 — which would also be
//! the exit code of a linter whose rules silently stopped matching. The
//! self-test closes that hole: it writes a fixture workspace with one
//! seeded violation per rule (plus allow-annotated and test-gated copies
//! that must NOT fire) into a scratch directory, runs the real
//! [`crate::run_check`] on it, and asserts the exact findings.

use crate::rules;
use std::path::{Path, PathBuf};

/// Run the self-test. Returns `Ok(())` when every rule fired where
/// expected and nowhere else; `Err` describes the first discrepancy.
pub fn run() -> Result<(), String> {
    let root = scratch_dir()?;
    // Start from a clean slate; a previous failed run may have left files.
    if root.exists() {
        std::fs::remove_dir_all(&root).map_err(|e| format!("clean {}: {e}", root.display()))?;
    }
    let result = build_and_check(&root);
    // Best-effort cleanup either way.
    let _ = std::fs::remove_dir_all(&root);
    result
}

fn scratch_dir() -> Result<PathBuf, String> {
    Ok(std::env::temp_dir().join(format!("onex-audit-selftest-{}", std::process::id())))
}

fn write(root: &Path, rel: &str, content: &str) -> Result<(), String> {
    let path = root.join(rel);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
    }
    std::fs::write(&path, content).map_err(|e| format!("write {}: {e}", path.display()))
}

fn build_and_check(root: &Path) -> Result<(), String> {
    // --- no-panic-in-lib + determinism fixtures (onex-core scope) ------
    write(
        root,
        "crates/onex-core/src/lib.rs",
        r#"
pub fn seeded_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn seeded_panic() {
    panic!("seeded");
}

pub fn seeded_hash() -> std::collections::HashMap<u32, u32> {
    std::collections::HashMap::new()
}

pub fn allowed_expect(x: Option<u32>) -> u32 {
    x.expect("fixture") // audit:allow(no-panic-in-lib): selftest fixture, provably Some
}

pub fn unwrap_or_is_fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    pub fn test_only() {
        Option::<u32>::None.unwrap();
        panic!("test-only code is out of scope");
    }
}
"#,
    )?;

    // --- float-discipline + safety-comments fixtures (onex-dist scope) -
    write(
        root,
        "crates/onex-dist/src/lib.rs",
        r#"
pub fn seeded_lossy(a: f64) -> f32 {
    a as f32
}

pub fn seeded_float_eq(a: f64) -> bool {
    a == 0.0
}

pub fn total_cmp_is_fine(a: f64, b: f64) -> bool {
    a.total_cmp(&b).is_eq()
}

pub fn seeded_unsafe(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn documented_unsafe(p: *const u8) -> u8 {
    // SAFETY: fixture — caller guarantees p is valid and aligned.
    unsafe { *p }
}
"#,
    )?;

    // --- symindex-soundness fixture: one argued, one bare --------------
    write(
        root,
        "crates/onex-core/src/symindex.rs",
        r#"
pub fn seeded_skip_without_argument(mask: &mut [bool]) {
    for m in mask.iter_mut() {
        *m = true;
    }
}

// sound: fixture — the bucket bound provably dominates every member
// group's tier-0 bound, so dropping the bucket cannot change results.
pub fn documented_certified_skip(mask: &mut [bool]) {
    for m in mask.iter_mut() {
        *m = false;
    }
}

pub fn unrelated_helper() -> usize {
    3
}
"#,
    )?;

    // --- atomic-ordering fixture: one justified, one bare --------------
    write(
        root,
        "crates/onex-ts/src/atomics.rs",
        r#"
use std::sync::atomic::{AtomicUsize, Ordering};

pub fn seeded_bare_ordering(n: &AtomicUsize) -> usize {
    n.fetch_add(1, Ordering::Relaxed)
}

pub fn documented_ordering(n: &AtomicUsize) -> usize {
    // ordering: Relaxed — fixture; a standalone ticket counter that
    // guards no other memory.
    n.load(Ordering::Relaxed)
}

pub fn cmp_ordering_is_out_of_scope(a: u32, b: u32) -> bool {
    matches!(a.cmp(&b), std::cmp::Ordering::Less)
}
"#,
    )?;

    // --- io-error-context fixture: one bare construction (fires), one
    //     with the path interpolated, one allow-waived pathless site, and
    //     destructuring patterns (all clean) ------------------------------
    write(
        root,
        "crates/onex-core/src/io_fixture.rs",
        r#"
pub fn seeded_bare_io(e: std::io::Error) -> OnexError {
    OnexError::Io(format!("it broke: {e}"))
}

pub fn io_with_path(e: std::io::Error, path: &std::path::Path) -> OnexError {
    OnexError::Io(format!("reading {}: {e}", path.display()))
}

pub fn waived_pathless_io() -> OnexError {
    // audit:allow(io-error-context): fixture — memory-only pathless boundary
    OnexError::Io("nothing on disk was involved".to_string())
}

pub fn patterns_are_clean(e: &OnexError) -> usize {
    match e {
        OnexError::Io(msg) => msg.len(),
        _ => 0,
    }
}
"#,
    )?;

    // --- counter-coverage fixture: one emitted, one missing ------------
    write(
        root,
        "crates/onex-core/src/engine.rs",
        r#"
pub struct QueryStats {
    pub dtw_evals: usize,
    pub seeded_missing_counter: usize,
    pub elapsed_not_a_counter: bool,
}
"#,
    )?;
    write(
        root,
        "crates/onex-bench/src/experiments/perf.rs",
        r#"
pub fn emit() -> Vec<(&'static str, u64)> {
    vec![("dtw_evals", 1)]
}
"#,
    )?;

    let violations = crate::run_check(root)?;

    // Every expected (rule, file-suffix, needle) must be present…
    let expected: &[(&str, &str, &str)] = &[
        (rules::RULE_NO_PANIC, "onex-core/src/lib.rs", "unwrap"),
        (rules::RULE_NO_PANIC, "onex-core/src/lib.rs", "panic!"),
        (rules::RULE_DETERMINISM, "onex-core/src/lib.rs", "HashMap"),
        (rules::RULE_FLOAT, "onex-dist/src/lib.rs", "as f32"),
        (rules::RULE_FLOAT, "onex-dist/src/lib.rs", "=="),
        (rules::RULE_SAFETY, "onex-dist/src/lib.rs", "SAFETY"),
        (
            rules::RULE_SYMINDEX,
            "onex-core/src/symindex.rs",
            "seeded_skip_without_argument",
        ),
        (
            rules::RULE_COUNTER,
            "onex-core/src/engine.rs",
            "seeded_missing_counter",
        ),
        (
            rules::RULE_ATOMIC,
            "onex-ts/src/atomics.rs",
            "Ordering::Relaxed",
        ),
        (
            rules::RULE_IO_CONTEXT,
            "onex-core/src/io_fixture.rs",
            "path context",
        ),
    ];
    for (rule, file, needle) in expected {
        let hit = violations
            .iter()
            .any(|v| v.rule == *rule && v.file.ends_with(file) && v.message.contains(needle));
        if !hit {
            return Err(format!(
                "rule `{rule}` did not fire on seeded fixture {file} (needle `{needle}`)\nfindings:\n{}",
                render(&violations)
            ));
        }
    }

    // …and nothing may fire where the fixture says it must not.
    let forbidden: &[(&str, &str)] = &[
        // audit:allow must suppress the annotated expect.
        (rules::RULE_NO_PANIC, "expect"),
        // #[cfg(test)] regions are out of scope.
        (rules::RULE_NO_PANIC, "test-only"),
        // unwrap_or is not unwrap.
        (rules::RULE_NO_PANIC, "unwrap_or"),
        // Emitted and non-usize fields are not findings.
        (rules::RULE_COUNTER, "dtw_evals"),
        (rules::RULE_COUNTER, "elapsed_not_a_counter"),
        // A `// sound:` argument above the fn satisfies the rule, and
        // fns whose names claim no pruning are out of scope.
        (rules::RULE_SYMINDEX, "documented_certified_skip"),
        (rules::RULE_SYMINDEX, "unrelated_helper"),
    ];
    for (rule, needle) in forbidden {
        if violations
            .iter()
            .any(|v| v.rule == *rule && v.message.contains(needle))
        {
            return Err(format!(
                "rule `{rule}` fired on `{needle}`, which the fixture marks as clean\nfindings:\n{}",
                render(&violations)
            ));
        }
    }

    // The documented unsafe block must not be reported (exactly one
    // safety finding: the undocumented one).
    let safety_hits = violations
        .iter()
        .filter(|v| v.rule == rules::RULE_SAFETY)
        .count();
    if safety_hits != 1 {
        return Err(format!(
            "expected exactly 1 safety-comments finding, got {safety_hits}\nfindings:\n{}",
            render(&violations)
        ));
    }

    // Likewise the `// ordering:`-justified atomic and the cmp::Ordering
    // match must not be reported (exactly one atomic finding: the bare
    // one).
    let atomic_hits = violations
        .iter()
        .filter(|v| v.rule == rules::RULE_ATOMIC)
        .count();
    if atomic_hits != 1 {
        return Err(format!(
            "expected exactly 1 atomic-ordering-comment finding, got {atomic_hits}\nfindings:\n{}",
            render(&violations)
        ));
    }

    // And the path-carrying, allow-waived and destructuring Io sites must
    // not be reported (exactly one io-error-context finding: the bare
    // construction).
    let io_hits = violations
        .iter()
        .filter(|v| v.rule == rules::RULE_IO_CONTEXT)
        .count();
    if io_hits != 1 {
        return Err(format!(
            "expected exactly 1 io-error-context finding, got {io_hits}\nfindings:\n{}",
            render(&violations)
        ));
    }

    // An unjustified allow is itself a finding.
    write(
        root,
        "crates/onex-core/src/lib.rs",
        "pub fn f(x: Option<u32>) -> u32 { x.unwrap() } // audit:allow(no-panic-in-lib)\n",
    )?;
    let v2 = crate::run_check(root)?;
    let has_malformed = v2.iter().any(|v| v.rule == rules::RULE_ALLOW);
    let still_fires = v2.iter().any(|v| v.rule == rules::RULE_NO_PANIC);
    if !has_malformed || !still_fires {
        return Err(format!(
            "unjustified audit:allow must be reported and must not suppress\nfindings:\n{}",
            render(&v2)
        ));
    }

    Ok(())
}

fn render(violations: &[rules::Violation]) -> String {
    violations
        .iter()
        .map(|v| format!("  {v}"))
        .collect::<Vec<_>>()
        .join("\n")
}
