//! Minkowski (Lp) distances for equal-length sequences — the family behind
//! Yi & Faloutsos' "Fast time sequence indexing for arbitrary Lp norms"
//! (the paper's reference \[31\]). ED is `L2`; `L1` (Manhattan) is robust to
//! outlier samples; `L∞` (Chebyshev) bounds the worst-case point gap.
//! Provided for the extension surface: ONEX grouping is distance-agnostic
//! for the *offline* side as long as the chosen metric satisfies the
//! triangle inequality (all Lp do).

/// Which Lp norm to evaluate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LpNorm {
    /// Manhattan distance (p = 1).
    L1,
    /// Euclidean distance (p = 2).
    L2,
    /// General finite p ≥ 1.
    P(f64),
    /// Chebyshev distance (p = ∞).
    LInf,
}

/// Lp distance between equal-length sequences.
///
/// # Panics
/// Panics if the slices differ in length or if `P(p)` has `p < 1`
/// (not a metric below 1).
pub fn lp(x: &[f64], y: &[f64], norm: LpNorm) -> f64 {
    assert_eq!(x.len(), y.len(), "Lp requires equal lengths");
    match norm {
        LpNorm::L1 => x.iter().zip(y).map(|(a, b)| (a - b).abs()).sum(),
        LpNorm::L2 => crate::ed(x, y),
        LpNorm::P(p) => {
            assert!(p >= 1.0, "Lp is a metric only for p ≥ 1");
            x.iter()
                .zip(y)
                .map(|(a, b)| (a - b).abs().powf(p))
                .sum::<f64>()
                .powf(1.0 / p)
        }
        LpNorm::LInf => x
            .iter()
            .zip(y)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const X: [f64; 4] = [0.0, 1.0, 2.0, 3.0];
    const Y: [f64; 4] = [1.0, 1.0, 0.0, 3.0];

    #[test]
    fn l1_is_sum_of_absolute_gaps() {
        assert_eq!(lp(&X, &Y, LpNorm::L1), 1.0 + 0.0 + 2.0 + 0.0);
    }

    #[test]
    fn l2_matches_ed() {
        assert_eq!(lp(&X, &Y, LpNorm::L2), crate::ed(&X, &Y));
        assert!((lp(&X, &Y, LpNorm::P(2.0)) - crate::ed(&X, &Y)).abs() < 1e-12);
    }

    #[test]
    fn linf_is_max_gap() {
        assert_eq!(lp(&X, &Y, LpNorm::LInf), 2.0);
    }

    #[test]
    fn norms_are_ordered() {
        // For any pair: L∞ ≤ Lp ≤ L1 (p ≥ 1).
        let l1 = lp(&X, &Y, LpNorm::L1);
        let l2 = lp(&X, &Y, LpNorm::L2);
        let l3 = lp(&X, &Y, LpNorm::P(3.0));
        let li = lp(&X, &Y, LpNorm::LInf);
        assert!(li <= l3 && l3 <= l2 && l2 <= l1);
    }

    #[test]
    fn identity_and_symmetry() {
        for norm in [LpNorm::L1, LpNorm::L2, LpNorm::P(3.0), LpNorm::LInf] {
            assert_eq!(lp(&X, &X, norm), 0.0);
            assert_eq!(lp(&X, &Y, norm), lp(&Y, &X, norm));
        }
    }

    #[test]
    #[should_panic(expected = "p ≥ 1")]
    fn sub_one_p_rejected() {
        lp(&X, &Y, LpNorm::P(0.5));
    }
}
