//! Symbols stand-in: the real dataset records pen-tip trajectories of people
//! drawing six symbols. We reproduce the morphology with class-specific
//! control polygons interpolated by Catmull–Rom splines — long, very smooth
//! series (paper shape 995 × 398) whose smoothness is what lets ONEX cover
//! them with few representatives relative to the 78.6M subsequences.

use super::helpers::{add_noise, gaussian};
use crate::{Dataset, TimeSeries};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CLASSES: usize = 6;
const CONTROL_POINTS: usize = 9;

/// Catmull–Rom interpolation of `points` evaluated at `len` samples.
fn catmull_rom(points: &[f64], len: usize) -> Vec<f64> {
    let segs = points.len() - 1;
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let x = i as f64 / (len - 1) as f64 * segs as f64;
        let seg = (x.floor() as usize).min(segs - 1);
        let t = x - seg as f64;
        let p0 = points[seg.saturating_sub(1)];
        let p1 = points[seg];
        let p2 = points[seg + 1];
        let p3 = points[(seg + 2).min(points.len() - 1)];
        // Standard Catmull–Rom basis (tension 0.5).
        let v = 0.5
            * ((2.0 * p1)
                + (-p0 + p2) * t
                + (2.0 * p0 - 5.0 * p1 + 4.0 * p2 - p3) * t * t
                + (-p0 + 3.0 * p1 - 3.0 * p2 + p3) * t * t * t);
        out.push(v);
    }
    out
}

/// Generates a Symbols-like dataset (paper shape: 995 × 398, 6 classes).
pub fn symbols(n_series: usize, len: usize, seed: u64) -> Dataset {
    let mut class_rng = SmallRng::seed_from_u64(seed ^ 0x5717_3333);
    let prototypes: Vec<Vec<f64>> = (0..CLASSES)
        .map(|_| {
            (0..CONTROL_POINTS)
                .map(|_| class_rng.gen::<f64>() * 2.0 - 1.0)
                .collect()
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5717_4444);
    let mut series = Vec::with_capacity(n_series);
    for i in 0..n_series {
        let class = i % CLASSES;
        // Jitter the control polygon (same symbol, different hand) plus
        // per-writer pen scale and paper offset.
        let scale = 1.0 + 0.15 * gaussian(&mut rng);
        let offset = 0.12 * gaussian(&mut rng);
        let controls: Vec<f64> = prototypes[class]
            .iter()
            .map(|&p| scale * (p + 0.12 * gaussian(&mut rng)) + offset)
            .collect();
        let mut values = catmull_rom(&controls, len);
        add_noise(&mut values, 0.01, &mut rng);
        series.push(
            TimeSeries::with_label(values, class as i32 + 1)
                // audit:allow(no-panic-in-lib): generator values are finite by construction
                .expect("generator output is always finite"),
        );
    }
    Dataset::new("Symbols", series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spline_passes_near_control_points() {
        let pts = vec![0.0, 1.0, -1.0, 0.5, 0.0];
        let curve = catmull_rom(&pts, 41);
        // At segment boundaries the spline interpolates the control points.
        assert!((curve[0] - 0.0).abs() < 1e-9);
        assert!((curve[10] - 1.0).abs() < 1e-9);
        assert!((curve[20] - (-1.0)).abs() < 1e-9);
        assert!((curve[40] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn six_classes() {
        let d = symbols(24, 100, 5);
        for c in 1..=6 {
            assert_eq!(
                d.series().iter().filter(|t| t.label() == Some(c)).count(),
                4
            );
        }
    }

    #[test]
    fn series_are_smooth() {
        // Mean absolute first difference should be small relative to range.
        let d = symbols(6, 398, 5);
        for ts in d.series() {
            let diffs: f64 = ts
                .values()
                .windows(2)
                .map(|w| (w[1] - w[0]).abs())
                .sum::<f64>()
                / (ts.len() - 1) as f64;
            let range = ts.max() - ts.min();
            assert!(diffs < 0.15 * range, "roughness {diffs} vs range {range}");
        }
    }
}
