//! A minimal interactive shell over the ONEX base — the "truly interactive
//! exploration experience" of the paper's abstract, in terminal form, now
//! over the full dataset lifecycle: the base evolves *in place* (append /
//! remove / refine hot-swap it under a new epoch) and persists to a
//! checksummed snapshot, all through one `Explorer`.
//!
//! ```sh
//! cargo run --release --example interactive_cli
//! ```
//!
//! Commands (also printed at startup):
//!   best <series> <from> <to> [any]   best match for a slice as query
//!   design <v1,v2,...> [any]          best match for a designed query
//!   seasonal <series> <len>           recurring patterns in a series
//!   clusters <len>                    data-driven similarity clusters
//!   recommend [len]                   threshold guidance
//!   refine <st>                       re-threshold live (Algo 2.C hot-swap)
//!   append <v1,v2,...>                stream a new series in (raw units)
//!   remove <series>                   drop a series from the base
//!   save <path> | load <path>         snapshot v5 out / back in (v1–v4 load too)
//!   stats                             base statistics + epoch
//!   mem (alias: info)                 per-length columnar-store footprint
//!   quit

use onex::ts::synth;
use onex::{Explorer, ExplorerBuilder, MatchMode, QueryOptions, QueryRequest};
use std::io::{BufRead, Write};

/// Answers one best-match request and prints the match together with the
/// cascade counters (DTW evaluations, per-tier lower-bound prunes, early
/// abandons) — the work the pipeline saved, per query.
fn run_best(explorer: &Explorer, q: Vec<f64>, mode: MatchMode) {
    let resp = explorer.query(QueryRequest::BestMatch {
        values: q,
        mode,
        options: QueryOptions::default(),
    });
    match resp {
        Ok(resp) => {
            let m = resp.result.best_match().expect("best-match response");
            let s = &resp.stats;
            println!(
                "best: series {} [{}..{}] DTW̄={:.4}  ({:?})",
                m.subseq.series,
                m.subseq.start,
                m.subseq.end(),
                m.dist,
                s.elapsed
            );
            println!(
                "      {} DTW evals ({} abandoned early) | pruned paa/kim/keogh_eq/keogh_ec = {}/{}/{}/{} | {} LB_Keogh evals",
                s.dtw_evals, s.early_abandons, s.pruned_paa, s.pruned_kim, s.pruned_keogh_eq,
                s.pruned_keogh_ec, s.lb_keogh_evals
            );
            println!(
                "      index: {} probes → {} candidates, {} groups skipped, {} fallback scans",
                s.index_probes, s.index_candidates, s.groups_skipped_by_index, s.index_fallbacks
            );
        }
        Err(e) => println!("error: {e}"),
    }
}

fn print_help() {
    println!("commands:");
    println!("  best <series> <from> <to> [any]   best match for a dataset slice");
    println!("  design <v1,v2,...> [any]          best match for designed values (raw units)");
    println!("  seasonal <series> <len>           recurring patterns within a series");
    println!("  clusters <len>                    data-driven similarity clusters");
    println!("  recommend [len]                   threshold guidance");
    println!("  refine <st>                       re-threshold the live base (hot-swap)");
    println!("  append <v1,v2,...>                append a new series (raw units)");
    println!("  remove <series>                   remove a series");
    println!("  save <path> | load <path>         persist / restore the base");
    println!("  mem | info                        per-length store footprint (slabs, allocations)");
    println!("  stats | help | quit");
}

/// Prints the per-length memory accounting of the columnar group store:
/// groups, members, contiguous slab bytes (reps / envelopes / sums), the
/// PAA sketch-plane bytes, the symbolic word-plane bytes, member bytes,
/// and the heap-allocation count behind each length — plus the symbolic
/// index total (word planes + prefix hierarchy).
fn run_mem(explorer: &Explorer) {
    let fp = explorer.footprint();
    println!(
        "{:>5} {:>7} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10} {:>7}",
        "len",
        "groups",
        "members",
        "rep B",
        "env B",
        "sum B",
        "sketch B",
        "word B",
        "member B",
        "allocs"
    );
    for l in &fp.per_length {
        println!(
            "{:>5} {:>7} {:>8} {:>10} {:>10} {:>10} {:>10} {:>8} {:>10} {:>7}",
            l.len,
            l.groups,
            l.members,
            l.rep_slab_bytes,
            l.envelope_slab_bytes,
            l.sum_slab_bytes,
            l.sketch_bytes,
            l.word_bytes,
            l.member_bytes,
            l.allocations
        );
    }
    println!(
        "total: {} groups, {:.2} KB slabs + {:.2} KB sketches + {:.2} KB words + {:.2} KB members/metadata, {} allocations",
        fp.groups(),
        fp.slab_bytes() as f64 / 1024.0,
        fp.sketch_bytes() as f64 / 1024.0,
        fp.word_bytes() as f64 / 1024.0,
        (fp.total_bytes() - fp.slab_bytes() - fp.sketch_bytes() - fp.word_bytes()) as f64 / 1024.0,
        fp.allocations()
    );
    println!(
        "symbolic index: {:.2} KB (word planes + coarse-to-fine hierarchy)",
        explorer.base().stats().symindex_bytes as f64 / 1024.0
    );
}

fn parse_values(csv: &str) -> Option<Vec<f64>> {
    csv.split(',')
        .map(str::parse::<f64>)
        .collect::<Result<Vec<f64>, _>>()
        .ok()
}

fn main() {
    println!("loading ItalyPower-like dataset and building the ONEX base…");
    let data = synth::italy_power(67, 24, 1);
    let mut explorer = ExplorerBuilder::new()
        .threads(4)
        .build(&data)
        .expect("build");
    let s = explorer.base().stats();
    println!(
        "ready: {} series, {} subsequences → {} representatives ({:.2} MB)",
        explorer.base().dataset().len(),
        s.subsequences,
        s.representatives,
        s.total_mb()
    );
    print_help();

    let stdin = std::io::stdin();
    loop {
        print!("onex> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let t0 = std::time::Instant::now();
        match parts.as_slice() {
            [] => continue,
            ["quit" | "exit" | "q"] => break,
            ["help"] => print_help(),
            ["stats"] => {
                let base = explorer.base();
                let s = base.stats();
                println!(
                    "epoch={} ST={} reps={} subseqs={} lengths={} size={:.2} MB",
                    explorer.epoch(),
                    base.config().st,
                    s.representatives,
                    s.subsequences,
                    s.lengths,
                    s.total_mb()
                );
            }
            ["mem" | "info"] => run_mem(&explorer),
            ["best", series, from, to, rest @ ..] => {
                let (Ok(sid), Ok(a), Ok(b)) = (
                    series.parse::<usize>(),
                    from.parse::<usize>(),
                    to.parse::<usize>(),
                ) else {
                    println!("usage: best <series> <from> <to> [any]");
                    continue;
                };
                let base = explorer.base();
                let Ok(ts) = base.dataset().get(sid) else {
                    println!("no series {sid}");
                    continue;
                };
                if a >= b || b > ts.len() {
                    println!("bad range [{a}, {b}) for series of length {}", ts.len());
                    continue;
                }
                let q: Vec<f64> = ts.values()[a..b].to_vec();
                let mode = if rest.first() == Some(&"any") {
                    MatchMode::Any
                } else {
                    MatchMode::Exact(q.len())
                };
                run_best(&explorer, q, mode);
            }
            ["design", values, rest @ ..] => {
                let Some(raw) = parse_values(values) else {
                    println!("could not parse values");
                    continue;
                };
                let q = explorer.base().normalize_query(&raw);
                let mode = if rest.first() == Some(&"any") {
                    MatchMode::Any
                } else {
                    MatchMode::Exact(q.len())
                };
                run_best(&explorer, q, mode);
            }
            ["seasonal", series, len] => match (series.parse::<usize>(), len.parse::<usize>()) {
                (Ok(sid), Ok(l)) => match explorer.seasonal_for_series(sid, l, 2) {
                    Ok(cs) => {
                        println!("{} recurring group(s) ({:?})", cs.len(), t0.elapsed());
                        for c in cs.iter().take(5) {
                            let starts: Vec<u32> = c.members.iter().map(|m| m.start).collect();
                            println!("  recurs {}× at {:?}", c.members.len(), starts);
                        }
                    }
                    Err(e) => println!("error: {e}"),
                },
                _ => println!("usage: seasonal <series> <len>"),
            },
            ["clusters", len] => match len.parse::<usize>() {
                Ok(l) => match explorer.seasonal_all(l, 2) {
                    Ok(cs) => {
                        println!("{} cluster(s) ({:?})", cs.len(), t0.elapsed());
                        for c in cs.iter().take(5) {
                            println!("  group {} with {} members", c.group, c.members.len());
                        }
                    }
                    Err(e) => println!("error: {e}"),
                },
                _ => println!("usage: clusters <len>"),
            },
            ["recommend", rest @ ..] => {
                let len = rest.first().and_then(|s| s.parse::<usize>().ok());
                match explorer.recommend(None, len) {
                    Ok(rs) => {
                        for r in rs {
                            match r.upper {
                                Some(u) => {
                                    println!("  {:?}: ST ∈ [{:.3}, {:.3}]", r.degree, r.lower, u)
                                }
                                None => println!("  {:?}: ST ≥ {:.3}", r.degree, r.lower),
                            }
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            ["refine", st] => match st.parse::<f64>() {
                Ok(v) => {
                    let before = explorer.base().stats().representatives;
                    match explorer.refine_to(v) {
                        Ok(epoch) => println!(
                            "refined {} → {} reps, now epoch {} ({:?})",
                            before,
                            explorer.base().stats().representatives,
                            epoch,
                            t0.elapsed()
                        ),
                        Err(e) => println!("error: {e}"),
                    }
                }
                _ => println!("usage: refine <st>"),
            },
            ["append", values] => {
                let Some(raw) = parse_values(values) else {
                    println!("could not parse values");
                    continue;
                };
                match onex::TimeSeries::new(raw)
                    .map_err(onex::OnexError::from)
                    .and_then(|ts| explorer.append_series(ts))
                {
                    Ok(idx) => println!(
                        "appended as series {} — now epoch {} ({:?})",
                        idx,
                        explorer.epoch(),
                        t0.elapsed()
                    ),
                    Err(e) => println!("error: {e}"),
                }
            }
            ["remove", series] => match series.parse::<usize>() {
                Ok(sid) => match explorer.remove_series(sid) {
                    Ok(removed) => println!(
                        "removed series {} ({} samples) — now epoch {} ({:?})",
                        sid,
                        removed.len(),
                        explorer.epoch(),
                        t0.elapsed()
                    ),
                    Err(e) => println!("error: {e}"),
                },
                _ => println!("usage: remove <series>"),
            },
            ["save", path] => match explorer.save(path) {
                Ok(()) => println!("saved snapshot to {path} ({:?})", t0.elapsed()),
                Err(e) => println!("error: {e}"),
            },
            ["load", path] => match Explorer::load(path) {
                Ok(loaded) => {
                    println!(
                        "loaded {} series at epoch {} ({:?})",
                        loaded.base().dataset().len(),
                        loaded.epoch(),
                        t0.elapsed()
                    );
                    explorer = loaded;
                }
                Err(e) => println!("error: {e}"),
            },
            _ => {
                println!("unrecognized command");
                print_help();
            }
        }
    }
    println!("bye");
}
