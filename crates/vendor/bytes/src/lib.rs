//! Offline stand-in for the `bytes` crate, covering the subset the snapshot
//! codec uses: `BytesMut` as an append-only builder with the little-endian
//! `put_*` family, `freeze()` into an immutable `Bytes`, and the `Buf`
//! reader view over `&[u8]`. Backed by `Vec<u8>`; no refcounted slices —
//! nothing here needs zero-copy splitting.

use std::ops::Deref;

/// Immutable byte container (stand-in for `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer (stand-in for `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with at least `cap` bytes of capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Write side (stand-in for `bytes::BufMut`, little-endian subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read side (stand-in for `bytes::Buf`, the subset the codec uses).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(b"AB");
        b.put_u8(7);
        b.put_u32_le(0x01020304);
        b.put_i32_le(-5);
        b.put_u64_le(42);
        b.put_f64_le(1.5);
        let frozen = b.freeze();
        assert_eq!(&frozen[..2], b"AB");
        assert_eq!(frozen[2], 7);
        assert_eq!(
            u32::from_le_bytes(frozen[3..7].try_into().unwrap()),
            0x01020304
        );
        assert_eq!(i32::from_le_bytes(frozen[7..11].try_into().unwrap()), -5);
        assert_eq!(u64::from_le_bytes(frozen[11..19].try_into().unwrap()), 42);
        assert_eq!(f64::from_le_bytes(frozen[19..27].try_into().unwrap()), 1.5);
        assert_eq!(frozen.len(), 27);
        assert_eq!(frozen.to_vec().len(), 27);
    }

    #[test]
    fn buf_remaining_tracks_slice() {
        let data = [1u8, 2, 3];
        let mut s: &[u8] = &data;
        assert_eq!(Buf::remaining(&s), 3);
        assert!(Buf::has_remaining(&s));
        s = &s[3..];
        assert!(!Buf::has_remaining(&s));
    }
}
