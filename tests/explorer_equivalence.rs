//! The unified-engine contract, tested from the outside:
//!
//! 1. **Equivalence** — `Explorer` must return *byte-identical* answers to
//!    the legacy per-class entry points (`SimilarityQuery`, `seasonal_*`,
//!    `recommend`, `best_match_batch`) for every query class, across a
//!    spread of queries on a synthetic dataset. The engine reroutes the
//!    same internals, so any drift is a bug.
//! 2. **Concurrency** — one shared `Arc<OnexBase>` must serve queries from
//!    many threads simultaneously, each answer identical to the
//!    single-threaded one.
#![allow(deprecated)]

use onex::ts::synth;
use onex::{
    Explorer, MatchMode, OnexBase, OnexConfig, QueryOptions, QueryRequest, SimilarityDegree,
    SimilarityQuery,
};
use std::sync::Arc;

fn base() -> OnexBase {
    let d = synth::sine_mix(10, 24, 2, 2024);
    OnexBase::build(&d, OnexConfig::default()).unwrap()
}

/// A spread of in-dataset queries across series, offsets, and lengths.
fn queries(base: &OnexBase) -> Vec<Vec<f64>> {
    let mut out = Vec::new();
    for (sid, lo, hi) in [
        (0usize, 0usize, 12usize),
        (1, 3, 9),
        (2, 5, 21),
        (3, 0, 24),
        (4, 8, 16),
        (5, 2, 20),
        (6, 0, 6),
        (7, 10, 22),
        (8, 1, 17),
        (9, 4, 12),
    ] {
        out.push(base.dataset().series()[sid].values()[lo..hi].to_vec());
    }
    out
}

#[test]
fn best_match_identical_to_legacy_in_both_modes() {
    let b = base();
    let explorer = Explorer::new(Arc::new(b.clone()));
    let mut legacy = SimilarityQuery::new(&b);
    for q in queries(&b) {
        for mode in [MatchMode::Any, MatchMode::Exact(q.len())] {
            let old = legacy.best_match(&q, mode, None).unwrap();
            let new = explorer
                .best_match(&q, mode, QueryOptions::default())
                .unwrap();
            assert_eq!(old, new, "mode {mode:?}, qlen {}", q.len());
        }
        // And with an ST override.
        let old = legacy.best_match(&q, MatchMode::Any, Some(0.4)).unwrap();
        let new = explorer
            .best_match(&q, MatchMode::Any, QueryOptions::with_st(0.4))
            .unwrap();
        assert_eq!(old, new);
    }
}

#[test]
fn top_k_and_range_identical_to_legacy() {
    let b = base();
    let explorer = Explorer::new(Arc::new(b.clone()));
    let mut legacy = SimilarityQuery::new(&b);
    for q in queries(&b) {
        for k in [1usize, 3, 10] {
            let old = legacy
                .top_k(&q, MatchMode::Exact(q.len()), k, None)
                .unwrap();
            let new = explorer
                .top_k(&q, MatchMode::Exact(q.len()), k, QueryOptions::default())
                .unwrap();
            assert_eq!(old, new, "k={k}");
        }
        for verify in [false, true] {
            let old = legacy
                .within_threshold(&q, MatchMode::Any, Some(0.15), verify)
                .unwrap();
            let new = explorer
                .within_threshold(&q, MatchMode::Any, verify, QueryOptions::with_st(0.15))
                .unwrap();
            assert_eq!(old, new, "verify={verify}");
        }
    }
}

#[test]
fn cascade_results_byte_identical_to_unpruned_search() {
    // The cascaded lower-bound pipeline (LB_Kim → query-envelope LB_Keogh
    // → candidate-envelope LB_Keogh → suffix-abandoned DTW) changes work
    // done, never answers: every Class I query form must return results
    // byte-identical to a search with all pruning disabled, and the
    // intermediate "representative-only LB" ablation point must agree too.
    let b = base();
    let explorer = Explorer::new(Arc::new(b.clone()));
    let unpruned = QueryOptions {
        lb_pruning: false,
        ..QueryOptions::default()
    };
    let rep_only = QueryOptions {
        cascade: false,
        ..QueryOptions::default()
    };
    for q in queries(&b) {
        for mode in [MatchMode::Any, MatchMode::Exact(q.len())] {
            let on = explorer
                .best_match(&q, mode, QueryOptions::default())
                .unwrap();
            assert_eq!(on, explorer.best_match(&q, mode, unpruned).unwrap());
            assert_eq!(on, explorer.best_match(&q, mode, rep_only).unwrap());
            for k in [1usize, 3, 10] {
                let tk = explorer
                    .top_k(&q, mode, k, QueryOptions::default())
                    .unwrap();
                assert_eq!(tk, explorer.top_k(&q, mode, k, unpruned).unwrap(), "k={k}");
                assert_eq!(tk, explorer.top_k(&q, mode, k, rep_only).unwrap(), "k={k}");
            }
            for verify in [false, true] {
                let wt = explorer
                    .within_threshold(&q, mode, verify, QueryOptions::default())
                    .unwrap();
                assert_eq!(
                    wt,
                    explorer
                        .within_threshold(&q, mode, verify, unpruned)
                        .unwrap(),
                    "verify={verify}"
                );
            }
        }
    }
}

#[test]
fn cascade_reduces_dtw_evaluations() {
    // The point of the pipeline: fewer DTW evaluations for the same
    // answers. Summed over a spread of queries, the cascade must do
    // strictly less DTW work than the unpruned search, and per-tier prune
    // counters must account exactly for the total.
    let b = base();
    let explorer = Explorer::new(Arc::new(b.clone()));
    let unpruned = QueryOptions {
        lb_pruning: false,
        ..QueryOptions::default()
    };
    let mut evals_on = 0usize;
    let mut evals_off = 0usize;
    for q in queries(&b) {
        for (opts, evals) in [
            (QueryOptions::default(), &mut evals_on),
            (unpruned, &mut evals_off),
        ] {
            let resp = explorer
                .query(QueryRequest::TopK {
                    values: q.clone(),
                    mode: MatchMode::Exact(q.len()),
                    k: 3,
                    options: opts,
                })
                .unwrap();
            *evals += resp.stats.dtw_evals;
            assert_eq!(
                resp.stats.lb_prunes,
                resp.stats.pruned_paa
                    + resp.stats.pruned_kim
                    + resp.stats.pruned_keogh_eq
                    + resp.stats.pruned_keogh_ec
            );
        }
    }
    assert!(
        evals_on < evals_off,
        "cascade must cut DTW work: {evals_on} vs {evals_off}"
    );
}

#[test]
fn seasonal_and_recommend_identical_to_legacy() {
    let b = base();
    let explorer = Explorer::new(Arc::new(b.clone()));
    for len in [2usize, 8, 16, 24] {
        assert_eq!(
            onex::core::query::seasonal_all(&b, len, 2).unwrap(),
            explorer.seasonal_all(len, 2).unwrap(),
            "len={len}"
        );
        for sid in 0..b.dataset().len() {
            assert_eq!(
                onex::core::query::seasonal_for_series(&b, sid, len, 2).unwrap(),
                explorer.seasonal_for_series(sid, len, 2).unwrap(),
                "sid={sid} len={len}"
            );
        }
    }
    for degree in [
        None,
        Some(SimilarityDegree::Strict),
        Some(SimilarityDegree::Medium),
        Some(SimilarityDegree::Loose),
    ] {
        for len in [None, Some(8usize), Some(16)] {
            assert_eq!(
                onex::core::query::recommend(&b, degree, len).unwrap(),
                explorer.recommend(degree, len).unwrap(),
                "degree={degree:?} len={len:?}"
            );
        }
    }
}

#[test]
fn batch_shim_identical_to_engine_batch() {
    let b = base();
    let explorer = Explorer::new(Arc::new(b.clone()));
    let qs: Vec<onex::core::query::BatchQuery> = queries(&b)
        .into_iter()
        .map(onex::core::query::BatchQuery::any)
        .collect();
    let legacy = onex::core::query::best_match_batch(&b, &qs, 4);
    let requests: Vec<QueryRequest> = qs
        .iter()
        .map(|q| QueryRequest::best_match(q.values.clone(), MatchMode::Any))
        .collect();
    let resp = explorer
        .query(QueryRequest::Batch {
            requests,
            threads: 4,
        })
        .unwrap();
    let engine = resp.result.batch().unwrap();
    assert_eq!(legacy.len(), engine.len());
    for (old, new) in legacy.iter().zip(engine) {
        assert_eq!(
            old.as_ref().unwrap(),
            new.as_ref().unwrap().result.best_match().unwrap()
        );
    }
}

#[test]
fn concurrent_queries_from_many_threads_over_one_shared_base() {
    const THREADS: usize = 6;
    let b = base();
    let shared = Arc::new(b);
    let explorer = Explorer::new(Arc::clone(&shared));
    let qs = queries(&shared);

    // Ground truth, single-threaded.
    let expected: Vec<_> = qs
        .iter()
        .map(|q| {
            (
                explorer
                    .best_match(q, MatchMode::Any, QueryOptions::default())
                    .unwrap(),
                explorer
                    .top_k(q, MatchMode::Exact(q.len()), 3, QueryOptions::default())
                    .unwrap(),
            )
        })
        .collect();
    let seasonal_expected = explorer.seasonal_all(8, 2).unwrap();
    let recommend_expected = explorer.recommend(None, None).unwrap();

    // Hammer the same explorer from THREADS threads at once; every thread
    // issues every query class, interleaved, and must see identical
    // answers.
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let explorer = explorer.clone();
            let qs = &qs;
            let expected = &expected;
            let seasonal_expected = &seasonal_expected;
            let recommend_expected = &recommend_expected;
            scope.spawn(move || {
                for round in 0..3 {
                    for i in 0..qs.len() {
                        // Stagger the order per thread so threads are
                        // genuinely interleaved, not lockstepped.
                        let i = (i + t + round) % qs.len();
                        let q = &qs[i];
                        let got = explorer
                            .best_match(q, MatchMode::Any, QueryOptions::default())
                            .unwrap();
                        assert_eq!(got, expected[i].0, "thread {t} query {i}");
                        let got = explorer
                            .top_k(q, MatchMode::Exact(q.len()), 3, QueryOptions::default())
                            .unwrap();
                        assert_eq!(got, expected[i].1, "thread {t} query {i}");
                    }
                    assert_eq!(&explorer.seasonal_all(8, 2).unwrap(), seasonal_expected);
                    assert_eq!(&explorer.recommend(None, None).unwrap(), recommend_expected);
                }
            });
        }
    });

    // The base is still shared (explorer clones + our handle).
    assert!(Arc::strong_count(&shared) >= 2);
}

#[test]
fn concurrent_mixed_request_batch() {
    // The Batch variant itself runs on worker threads over one shared
    // base, mixing all three classes.
    let b = base();
    let explorer = Explorer::new(Arc::new(b));
    let mut requests = Vec::new();
    for q in queries(&explorer.base()) {
        requests.push(QueryRequest::best_match(q, MatchMode::Any));
    }
    requests.push(QueryRequest::seasonal_all(8, 2));
    requests.push(QueryRequest::recommend(None, None));
    let n = requests.len();
    let resp = explorer
        .query(QueryRequest::Batch {
            requests,
            threads: 4,
        })
        .unwrap();
    let batch = resp.result.batch().unwrap();
    assert_eq!(batch.len(), n);
    assert!(batch.iter().all(|r| r.is_ok()));
    assert!(resp.stats.dtw_evals > 0);
    assert!(resp.stats.elapsed > std::time::Duration::ZERO);
}
