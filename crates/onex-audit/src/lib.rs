//! # onex-audit — repo-local static analysis for the ONEX workspace
//!
//! A dependency-free lint pass that enforces the correctness contracts
//! the engine's byte-identical-results guarantee rests on. It ships its
//! own minimal Rust lexer ([`lexer`]) that blanks comments, strings and
//! `#[cfg(test)]` regions, then runs token-level rules ([`rules`]) over
//! the remaining library code:
//!
//! | rule | scope | what it catches |
//! |---|---|---|
//! | `no-panic-in-lib` | onex-core, onex-dist, onex-ts | `.unwrap()`, `.expect()`, `panic!`, `todo!`, `unimplemented!`, `unreachable!` |
//! | `determinism` | onex-core, onex-dist, onex-ts | any `HashMap`/`HashSet` use |
//! | `float-discipline` | onex-dist + the query cascade | `as f32` casts, bare `==`/`!=` on float literals |
//! | `safety-comments` | all library crates | `unsafe` without a `// SAFETY:` comment |
//! | `symindex-soundness-comment` | the symbolic word index | skip/prune/certify fns without a nearby `// sound:` argument |
//! | `atomic-ordering-comment` | all library crates | atomic `Ordering::` uses without a nearby `// ordering:` justification |
//! | `io-error-context` | onex-core | `OnexError::Io` constructions that do not interpolate the path they failed on |
//! | `counter-coverage` | engine ↔ bench | `QueryStats` counters missing from the perf JSON writer |
//!
//! Genuinely infallible sites are waived inline with
//! `// audit:allow(<rule>): <justification>`; a directive without a
//! justification is itself a finding.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run -p onex-audit -- check      # lint the tree, exit 1 on findings
//! cargo run -p onex-audit -- selftest   # prove each rule fires on seeded fixtures
//! ```

pub mod lexer;
pub mod rules;
pub mod selftest;

use rules::Violation;
use std::path::{Path, PathBuf};

/// Scope of the `no-panic-in-lib` and `determinism` rules: the crates
/// whose code can affect query results or serve queries.
const RESULT_CRATES: &[&str] = &[
    "crates/onex-core/src",
    "crates/onex-dist/src",
    "crates/onex-ts/src",
];

/// Scope of `float-discipline`: the distance kernels and the pruning
/// cascade, where a lossy cast or an implicit float compare breaks the
/// cross-tier byte-identity guarantee.
const FLOAT_SCOPE: &[&str] = &[
    "crates/onex-dist/src",
    "crates/onex-core/src/engine.rs",
    "crates/onex-core/src/query",
];

/// Scope of `safety-comments`: every library crate plus the facade.
const SAFETY_SCOPE: &[&str] = &[
    "crates/onex-core/src",
    "crates/onex-dist/src",
    "crates/onex-ts/src",
    "crates/onex-baselines/src",
    "src",
];

/// Scope of `io-error-context`: the crate that owns `OnexError` — every
/// construction of its `Io` variant must carry the path it failed on
/// (an IO error without its path is undebuggable once it crosses the
/// serving boundary).
const IO_CONTEXT_SCOPE: &[&str] = &["crates/onex-core/src"];

/// Scope of `symindex-soundness-comment`: the symbolic word index, the
/// only module allowed to discard candidates before the exact cascade
/// sees them — its pruning functions must carry their soundness argument
/// in a `// sound:` comment.
const SYMINDEX_SCOPE: &[&str] = &["crates/onex-core/src/symindex.rs"];

/// The cross-file counter-coverage pair: the engine `QueryStats`
/// definition and the perf experiment JSON writer.
const STATS_FILE: &str = "crates/onex-core/src/engine.rs";
const PERF_FILE: &str = "crates/onex-bench/src/experiments/perf.rs";

/// Run the full audit over the workspace rooted at `root`.
/// Returns all violations, sorted by (file, line, rule).
pub fn run_check(root: &Path) -> Result<Vec<Violation>, String> {
    let mut out = Vec::new();

    // Build the union of files to scan, remembering which rules apply.
    let mut files: std::collections::BTreeMap<PathBuf, FileRules> =
        std::collections::BTreeMap::new();
    for scope in RESULT_CRATES {
        for f in rust_files(&root.join(scope))? {
            let e = files.entry(f).or_default();
            e.no_panic = true;
            e.determinism = true;
        }
    }
    for scope in FLOAT_SCOPE {
        for f in rust_files(&root.join(scope))? {
            files.entry(f).or_default().float = true;
        }
    }
    for scope in SAFETY_SCOPE {
        for f in rust_files(&root.join(scope))? {
            // `atomic-ordering-comment` shares the safety scope: both
            // rules demand a written argument wherever library code
            // steps outside the compiler's guarantees.
            let e = files.entry(f).or_default();
            e.safety = true;
            e.atomic = true;
        }
    }
    for scope in SYMINDEX_SCOPE {
        for f in rust_files(&root.join(scope))? {
            files.entry(f).or_default().symindex = true;
        }
    }
    for scope in IO_CONTEXT_SCOPE {
        for f in rust_files(&root.join(scope))? {
            files.entry(f).or_default().io_context = true;
        }
    }

    for (path, which) in &files {
        let src =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .into_owned();
        let mut masked = lexer::mask(&src);
        lexer::strip_test_regions(&mut masked.text);
        let toks = lexer::scan(&masked.text);

        let (allows, mut malformed) = rules::parse_allows(&rel, &masked.text, &masked.comments);
        out.append(&mut malformed);

        let mut found = Vec::new();
        if which.no_panic {
            found.extend(rules::no_panic(&rel, &toks));
        }
        if which.determinism {
            found.extend(rules::determinism(&rel, &toks));
        }
        if which.float {
            found.extend(rules::float_discipline(&rel, &toks));
        }
        if which.safety {
            found.extend(rules::safety_comments(&rel, &toks, &masked.comments));
        }
        if which.symindex {
            found.extend(rules::symindex_soundness(&rel, &toks, &masked.comments));
        }
        if which.atomic {
            found.extend(rules::atomic_ordering(&rel, &toks, &masked.comments));
        }
        if which.io_context {
            found.extend(rules::io_error_context(&rel, &toks));
        }
        out.extend(rules::apply_allows(found, &allows));
    }

    // Cross-file: counter coverage. Skipped when either side is absent
    // (fixture trees exercising only the token rules).
    let stats_path = root.join(STATS_FILE);
    let perf_path = root.join(PERF_FILE);
    if stats_path.is_file() && perf_path.is_file() {
        let stats_src = std::fs::read_to_string(&stats_path)
            .map_err(|e| format!("read {}: {e}", stats_path.display()))?;
        let perf_src = std::fs::read_to_string(&perf_path)
            .map_err(|e| format!("read {}: {e}", perf_path.display()))?;
        let mut masked = lexer::mask(&stats_src);
        lexer::strip_test_regions(&mut masked.text);
        let (allows, _) = rules::parse_allows(STATS_FILE, &masked.text, &masked.comments);
        let found = rules::counter_coverage(STATS_FILE, &masked.text, PERF_FILE, &perf_src);
        out.extend(rules::apply_allows(found, &allows));
    }

    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

#[derive(Default)]
struct FileRules {
    no_panic: bool,
    determinism: bool,
    float: bool,
    safety: bool,
    symindex: bool,
    atomic: bool,
    io_context: bool,
}

/// Recursively collect `.rs` files under `path`; a missing path yields an
/// empty set (fixture roots need not mirror the whole workspace), and a
/// single-file path yields just that file.
fn rust_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(out);
    }
    if !path.is_dir() {
        return Ok(out);
    }
    let mut stack = vec![path.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries =
            std::fs::read_dir(&dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}
