//! **Fig. 3** — scalability: similarity-query time as the number of series
//! grows. StarLightCurves-like subsets of length-100 series, N from 1000 to
//! 5000 (× scale) in five steps, same 20-query methodology.
//!
//! Paper result: Standard DTW and PAA grow steeply with N; ONEX and
//! Trillion stay near-flat at this range (Fig. 3a), with Trillion up to 4×
//! slower than ONEX in the zoomed view (Fig. 3b).

use super::Ctx;
use crate::harness::{self, build_timed, fmt_secs, make_queries};
use onex_baselines::{BruteForce, PaaSearch, Spring, Trillion};
use onex_core::{Explorer, MatchMode, QueryOptions};
use onex_ts::synth::PaperDataset;
use onex_ts::Decomposition;

/// Runs the experiment and prints one row per N.
pub fn run(ctx: &Ctx) {
    println!(
        "\n== Fig. 3: scalability on StarLightCurves-like data, series length 100 (scale {}) ==",
        ctx.scale
    );
    println!(
        "paper: StdDTW/PAA grow steeply; ONEX & Trillion near-flat, Trillion up to 4× slower.\n"
    );
    let ds = PaperDataset::StarLightCurves;
    let len = 100;
    let widths = [8, 10, 10, 12, 12, 12, 14];
    let mut table = harness::Table::new(
        "fig3_scalability",
        &[
            "N",
            "ONEX",
            "Trillion",
            "PAA",
            "SPRING",
            "StdDTW",
            "ONEX/Trillion",
        ],
        &widths,
    );
    for step in 1..=5usize {
        let n = ((1000 * step) as f64 * ctx.scale).round().max(8.0) as usize;
        let data = ds.generate_with_shape(n, len, ctx.seed);
        let (base, _) = build_timed(&data, ctx.config());
        let explorer = Explorer::from_base(base);
        let base = explorer.base();
        let (n_in, n_out) = ctx.query_mix();
        let queries = make_queries(ds, &base, n_in, n_out, ctx.seed);
        let window = base.config().window;

        let mut trillion = Trillion::new(base.dataset(), window);
        let mut paa = PaaSearch::new(base.dataset(), window, Decomposition::full(), 4);
        let mut spring = Spring::new(base.dataset());
        let mut brute = BruteForce::new(base.dataset(), window, Decomposition::full(), true);

        let (mut to, mut tt, mut tp, mut tsp, mut ts) = (vec![], vec![], vec![], vec![], vec![]);
        for q in &queries {
            to.push(harness::time_avg(ctx.runs, || {
                let _ = explorer.best_match(&q.values, MatchMode::Any, QueryOptions::default());
            }));
            tt.push(harness::time_avg(ctx.runs, || {
                let _ = trillion.best_match(&q.values);
            }));
            tp.push(harness::time_avg(1, || {
                let _ = paa.best_match_any(&q.values);
            }));
            tsp.push(harness::time_avg(1, || {
                let _ = spring.best_match(&q.values);
            }));
            ts.push(harness::time_avg(1, || {
                let _ = brute.best_match_any(&q.values);
            }));
        }
        let (o, t, p, sp, s) = (
            harness::mean(&to),
            harness::mean(&tt),
            harness::mean(&tp),
            harness::mean(&tsp),
            harness::mean(&ts),
        );
        table.row(vec![
            format!("{n}"),
            fmt_secs(o),
            fmt_secs(t),
            fmt_secs(p),
            fmt_secs(sp),
            fmt_secs(s),
            format!("{:.2}×", t / o),
        ]);
    }
    table.finish(ctx.csv());
}
