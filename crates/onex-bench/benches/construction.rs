//! Criterion benchmarks for ONEX-base construction (the offline phase of
//! Fig. 5): sequential vs parallel, Strict vs Paper mode, and the ST sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use onex_core::{BuildMode, OnexBase, OnexConfig};
use onex_ts::synth;

fn bench_build(c: &mut Criterion) {
    let data = synth::sine_mix(12, 32, 2, 5);
    let mut g = c.benchmark_group("construction");

    for &threads in &[1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |b, &threads| {
                let config = OnexConfig {
                    threads,
                    ..OnexConfig::default()
                };
                b.iter(|| OnexBase::build(&data, config).unwrap())
            },
        );
    }

    for (name, mode) in [("strict", BuildMode::Strict), ("paper", BuildMode::Paper)] {
        g.bench_with_input(BenchmarkId::new("mode", name), &mode, |b, &mode| {
            let config = OnexConfig {
                build_mode: mode,
                ..OnexConfig::default()
            };
            b.iter(|| OnexBase::build(&data, config).unwrap())
        });
    }

    for &st in &[0.1f64, 0.2, 0.5] {
        g.bench_with_input(BenchmarkId::new("st", format!("{st}")), &st, |b, &st| {
            let config = OnexConfig::with_st(st);
            b.iter(|| OnexBase::build(&data, config).unwrap())
        });
    }
    g.finish();
}

fn bench_refine(c: &mut Criterion) {
    let data = synth::sine_mix(10, 24, 2, 9);
    let base = OnexBase::build(&data, OnexConfig::with_st(0.2)).unwrap();
    let mut g = c.benchmark_group("refine");
    // The refinement construction itself — what Explorer::refine_to runs
    // off-line before its O(1) hot-swap. The deprecated free function is
    // the same code path without the swap plumbing, so it isolates the
    // construction cost per iteration.
    #[allow(deprecated)]
    g.bench_function("split_to_0.1", |b| {
        b.iter(|| onex_core::refine::refine(&base, 0.1).unwrap())
    });
    #[allow(deprecated)]
    g.bench_function("merge_to_0.4", |b| {
        b.iter(|| onex_core::refine::refine(&base, 0.4).unwrap())
    });
    // refinement vs full rebuild at the target threshold
    g.bench_function("full_rebuild_0.1", |b| {
        b.iter(|| OnexBase::build(&data, OnexConfig::with_st(0.1)).unwrap())
    });
    g.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    let data = synth::sine_mix(10, 24, 2, 9);
    let base = OnexBase::build(&data, OnexConfig::default()).unwrap();
    let bytes = onex_core::snapshot::encode(&base);
    let v1 = onex_core::snapshot::encode_v1(&base);
    let mut g = c.benchmark_group("snapshot");
    g.bench_function("encode_v2", |b| {
        b.iter(|| onex_core::snapshot::encode(&base))
    });
    g.bench_function("encode_v1", |b| {
        b.iter(|| onex_core::snapshot::encode_v1(&base))
    });
    g.bench_function("decode_v2_checksummed", |b| {
        b.iter(|| onex_core::snapshot::decode(&bytes).unwrap())
    });
    g.bench_function("decode_v1", |b| {
        b.iter(|| onex_core::snapshot::decode(&v1).unwrap())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_build, bench_refine, bench_snapshot
}
criterion_main!(benches);
