//! Class II seasonal-similarity queries (Algorithm 2.B): surface *recurring*
//! similarity rather than a single best match.
//!
//! * **User-driven** (`SeasonalScope::Series`): given a sample series and a
//!   length, return the groups of that length restricted to the sample's own
//!   subsequences — a group contributing ≥ 2 of them is a pattern that
//!   recurs within the series (e.g. "all 30-day windows of the Apple stock
//!   with similar prices").
//! * **Data-driven** (`SeasonalScope::All`): given only a length, return every
//!   group of that length with at least `min_members` members — the clusters
//!   of mutually similar subsequences across the whole dataset.
//!
//! Both run straight off the precomputed LSI: no distance computation at
//! query time, which is why the paper reports near-constant response times
//! (Fig. 4). Issue these via [`crate::engine::Explorer`] with
//! [`crate::engine::QueryRequest::Seasonal`]; the free functions below are
//! deprecated shims over the same implementation.

use crate::{GroupId, OnexBase, OnexError, Result};
use onex_ts::SubseqRef;

/// One seasonal-similarity cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct SeasonalResult {
    /// The group realizing the pattern.
    pub group: GroupId,
    /// The qualifying member subsequences (all of the requested length).
    pub members: Vec<SubseqRef>,
}

/// Shared implementation of the user-driven query (see
/// [`seasonal_for_series`] for semantics).
pub(crate) fn seasonal_for_series_impl(
    base: &OnexBase,
    series: usize,
    len: usize,
    min_recurrence: usize,
) -> Result<Vec<SeasonalResult>> {
    base.ensure_nonempty()?;
    if series >= base.dataset().len() {
        return Err(OnexError::UnknownSeries(series));
    }
    let idx = base
        .length_index(len)
        .ok_or(OnexError::NoGroupsForLength(len))?;
    let min_recurrence = min_recurrence.max(1);
    let mut out = Vec::new();
    for &gid in &idx.group_ids {
        let members: Vec<SubseqRef> = base
            .group(gid)
            .members()
            .iter()
            .map(|&(r, _)| r)
            .filter(|r| r.series as usize == series)
            .collect();
        if members.len() >= min_recurrence {
            out.push(SeasonalResult {
                group: gid,
                members,
            });
        }
    }
    Ok(out)
}

/// Shared implementation of the data-driven query (see [`seasonal_all`]
/// for semantics).
pub(crate) fn seasonal_all_impl(
    base: &OnexBase,
    len: usize,
    min_members: usize,
) -> Result<Vec<SeasonalResult>> {
    base.ensure_nonempty()?;
    let idx = base
        .length_index(len)
        .ok_or(OnexError::NoGroupsForLength(len))?;
    let min_members = min_members.max(1);
    let mut out = Vec::new();
    for &gid in &idx.group_ids {
        let group = base.group(gid);
        if group.member_count() >= min_members {
            out.push(SeasonalResult {
                group: gid,
                members: group.members().iter().map(|&(r, _)| r).collect(),
            });
        }
    }
    Ok(out)
}

/// User-driven seasonal similarity: groups of length `len` restricted to
/// subsequences of `series`, keeping groups that contribute at least
/// `min_recurrence` of them (2 = "recurring", the natural default; 1 returns
/// every group the series participates in).
#[deprecated(
    since = "0.2.0",
    note = "use Explorer::seasonal_for_series (or QueryRequest::Seasonal) — same results, uniform stats"
)]
pub fn seasonal_for_series(
    base: &OnexBase,
    series: usize,
    len: usize,
    min_recurrence: usize,
) -> Result<Vec<SeasonalResult>> {
    seasonal_for_series_impl(base, series, len, min_recurrence)
}

/// Data-driven seasonal similarity: every group of length `len` with at
/// least `min_members` members (≥ 2 filters out the non-recurring
/// singletons).
#[deprecated(
    since = "0.2.0",
    note = "use Explorer::seasonal_all (or QueryRequest::Seasonal) — same results, uniform stats"
)]
pub fn seasonal_all(
    base: &OnexBase,
    len: usize,
    min_members: usize,
) -> Result<Vec<SeasonalResult>> {
    seasonal_all_impl(base, len, min_members)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OnexBase, OnexConfig};
    use onex_ts::{Dataset, TimeSeries};

    /// A series with an obvious recurring motif (two identical bumps) plus a
    /// flat distractor series.
    fn seasonal_base() -> OnexBase {
        let motif = vec![0.0, 0.8, 0.0, 0.1, 0.05, 0.1, 0.0, 0.8, 0.0, 0.1, 0.05, 0.1];
        let d = Dataset::new(
            "seasonal",
            vec![
                TimeSeries::new(motif).unwrap(),
                TimeSeries::new(vec![0.5; 12]).unwrap(),
            ],
        );
        OnexBase::build_prenormalized(d, OnexConfig::with_st(0.2)).unwrap()
    }

    #[test]
    fn user_driven_finds_recurring_motif() {
        let b = seasonal_base();
        // length-3 windows: [0.0,0.8,0.0] occurs at starts 0 and 6.
        let res = seasonal_for_series_impl(&b, 0, 3, 2).unwrap();
        let bump_group = res
            .iter()
            .find(|r| r.members.iter().any(|m| m.start == 0 && m.series == 0));
        let bump = bump_group.expect("recurring bump group exists");
        assert!(bump.members.iter().any(|m| m.start == 6));
        // every returned member is from series 0 at the right length
        for r in &res {
            assert!(r.members.len() >= 2);
            for m in &r.members {
                assert_eq!(m.series, 0);
                assert_eq!(m.len, 3);
            }
        }
    }

    #[test]
    fn min_recurrence_one_returns_all_participations() {
        let b = seasonal_base();
        let all = seasonal_for_series_impl(&b, 0, 3, 1).unwrap();
        let total: usize = all.iter().map(|r| r.members.len()).sum();
        // series 0 has 10 subsequences of length 3
        assert_eq!(total, 10);
    }

    #[test]
    fn data_driven_returns_groups_of_length() {
        let b = seasonal_base();
        let res = seasonal_all_impl(&b, 3, 2).unwrap();
        assert!(!res.is_empty());
        for r in &res {
            assert!(r.members.len() >= 2);
            for m in &r.members {
                assert_eq!(m.len, 3);
            }
        }
        // with min_members = 1 we get every group; counts cover all subseqs
        let every = seasonal_all_impl(&b, 3, 1).unwrap();
        let total: usize = every.iter().map(|r| r.members.len()).sum();
        assert_eq!(total, 10 + 10); // both series contribute 10 windows
    }

    #[test]
    fn unknown_series_and_length_are_rejected() {
        let b = seasonal_base();
        assert_eq!(
            seasonal_for_series_impl(&b, 99, 3, 2).unwrap_err(),
            OnexError::UnknownSeries(99)
        );
        assert_eq!(
            seasonal_for_series_impl(&b, 0, 500, 2).unwrap_err(),
            OnexError::NoGroupsForLength(500)
        );
        assert_eq!(
            seasonal_all_impl(&b, 500, 2).unwrap_err(),
            OnexError::NoGroupsForLength(500)
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_impls() {
        let b = seasonal_base();
        assert_eq!(
            seasonal_for_series(&b, 0, 3, 2).unwrap(),
            seasonal_for_series_impl(&b, 0, 3, 2).unwrap()
        );
        assert_eq!(
            seasonal_all(&b, 3, 2).unwrap(),
            seasonal_all_impl(&b, 3, 2).unwrap()
        );
    }
}
