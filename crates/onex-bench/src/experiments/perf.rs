//! **Perf baseline** — the machine-readable performance record of the
//! query engine: per-query-class latency, DTW-evaluation, and prune-rate
//! counters on the synthetic datasets, emitted as JSON so future changes
//! have a trajectory to compare against (`BENCH_pr8.json` is the current
//! checked-in baseline, recorded with the parallel query engine in place
//! and `query_threads` pinned to 1; `BENCH_pr7.json` / `BENCH_pr5.json` /
//! `BENCH_pr4.json` / `BENCH_pr3.json` are the pre-parallelism,
//! pre-index, pre-sketch and pre-columnar records — their
//! DTW/member-eval counters are identical to pr8's, which is the
//! result-neutrality proof of all four refactors) and CI can fail on
//! counter regressions.
//!
//! The work counters are recorded under `query_threads = 1` (see
//! [`Ctx::config`]): only the sequential scan's counters are a
//! machine-independent contract. Parallelism is measured separately by
//! the **serving** section — N client threads against one shared
//! `Explorer`, qps plus p50/p95/p99 tail latency per query class — with a
//! self-relative gate (multi-client qps ≥ 1.5× single-client on ECG,
//! skipped on single-core machines) rather than a cross-machine one.
//!
//! Three variants per class isolate the lower-bound pipeline:
//! `cascade` (the default full pipeline, symbolic index + sketch tier
//! included), `rep_only` (LB_Kim + the plain representative-envelope
//! check, the pre-cascade engine), and `unpruned` (no lower bounds at
//! all). Counters are exact and deterministic for a given
//! `--scale`/`--seed`, which is what makes the CI check stable on shared
//! runners; latency is reported for humans, with one deliberately loose
//! exception — the per-class p50 may not regress beyond
//! `LATENCY_REGRESSION_FACTOR`× baseline, a guard against
//! order-of-magnitude slowdowns counters cannot see. Each dataset block
//! also records the
//! parameters the engine actually *resolved* for it — the Sakoe-Chiba
//! band radius per query length and the clamped sketch width — so a
//! baseline is self-describing rather than an echo of the CLI flags.

use super::Ctx;
use crate::harness::{self, build_timed, fmt_secs, make_queries, Query};
use crate::json::Json;
use onex_core::{Explorer, MatchMode, QueryOptions, QueryRequest, QueryStats};
use onex_ts::synth::PaperDataset;
use std::path::Path;
use std::time::Instant;

/// The datasets the baseline records: small + mid-sized keeps the CI
/// smoke fast while still exercising multi-length bases, and
/// `NearDuplicates` stresses the symbolic index's worst case (whole
/// clusters collapsing onto one SAX word).
const DATASETS: [PaperDataset; 3] = [
    PaperDataset::ItalyPower,
    PaperDataset::Ecg,
    PaperDataset::NearDuplicates,
];

/// Maximum allowed growth in `cascade`-variant DTW evaluations and member
/// evaluations (best-match and top-k classes) relative to the checked-in
/// baseline before the CI check fails.
const REGRESSION_FACTOR: f64 = 2.0;

/// Minimum fraction of the baseline's tier-0 (PAA sketch) prune rate a
/// fresh run must retain: the O(w) tier fronting the cascade is a perf
/// contract, and silently losing it would re-expose every member to the
/// O(len) tiers without changing any result-level counter.
const PAA_RATE_FLOOR: f64 = 0.5;

/// Wall-clock guardrail: a fresh run's per-class p50 latency (`cascade`
/// variant) may not exceed this multiple of the baseline's. Latency on
/// shared runners is noisy, so the factor is deliberately loose — the
/// exact counters above remain the primary gate; this only catches
/// order-of-magnitude slowdowns invisible to counters (e.g. an index
/// probe gone accidentally quadratic).
const LATENCY_REGRESSION_FACTOR: f64 = 3.0;

/// The query classes the `--check-against` gate compares. Best-match was
/// the original gate; top-k joined once its k-th-best cutoff pruning
/// became part of the contract worth defending.
const GATED_CLASSES: [&str; 3] = ["best_match_exact", "best_match_any", "top_k_10_exact"];

/// Client-thread counts the serving bench drives one shared `Explorer`
/// with (every client issues sequential-scan queries; parallelism comes
/// from concurrency across queries, the interactive-exploration serving
/// shape).
const SERVING_CLIENTS: [usize; 2] = [1, 4];

/// Serving throughput gate: within one fresh run, the multi-client qps on
/// the gate dataset must reach this multiple of the same run's
/// single-client qps. Self-relative — both sides come from the same
/// process on the same machine — so cross-machine noise cannot trip it;
/// it is skipped (with a notice) when the machine has fewer than 2 cores.
const SERVING_SPEEDUP_FLOOR: f64 = 1.5;

/// The dataset the serving speedup gate reads (mid-sized: large enough
/// for per-query work to dominate scheduling overhead).
const SERVING_GATE_DATASET: PaperDataset = PaperDataset::Ecg;

/// One (class, variant) cell: counters summed over all queries (via
/// [`QueryStats::absorb`], the same roll-up the batch path uses), latency
/// averaged plus the p50 the wall-clock gate compares.
#[derive(Default, Clone, Copy)]
struct Cell {
    queries: usize,
    avg_latency_s: f64,
    p50_latency_s: f64,
    stats: QueryStats,
}

impl Cell {
    fn absorb(&mut self, stats: &QueryStats) {
        self.queries += 1;
        self.stats.absorb(stats);
    }

    /// Fraction of DTW candidates killed before the kernel ran.
    fn prune_rate(&self) -> f64 {
        let total = self.stats.dtw_evals + self.stats.lb_prunes;
        if total == 0 {
            0.0
        } else {
            self.stats.lb_prunes as f64 / total as f64
        }
    }

    /// Fraction of DTW candidates killed by the O(w) sketch tier alone.
    fn paa_prune_rate(&self) -> f64 {
        let total = self.stats.dtw_evals + self.stats.lb_prunes;
        if total == 0 {
            0.0
        } else {
            self.stats.pruned_paa as f64 / total as f64
        }
    }

    fn into_json(self, variant: &str) -> Json {
        Json::obj(vec![
            ("variant", Json::str(variant)),
            ("queries", Json::num(self.queries)),
            (
                "avg_latency_us",
                Json::Num((self.avg_latency_s * 1e6 * 100.0).round() / 100.0),
            ),
            (
                "p50_latency_us",
                Json::Num((self.p50_latency_s * 1e6 * 100.0).round() / 100.0),
            ),
            ("dtw_evals", Json::num(self.stats.dtw_evals)),
            ("groups_visited", Json::num(self.stats.groups_visited)),
            ("lengths_visited", Json::num(self.stats.lengths_visited)),
            ("members_examined", Json::num(self.stats.members_examined)),
            ("lb_prunes", Json::num(self.stats.lb_prunes)),
            ("members_lb_pruned", Json::num(self.stats.members_lb_pruned)),
            ("lb_keogh_evals", Json::num(self.stats.lb_keogh_evals)),
            ("early_abandons", Json::num(self.stats.early_abandons)),
            ("pruned_paa", Json::num(self.stats.pruned_paa)),
            ("pruned_kim", Json::num(self.stats.pruned_kim)),
            ("pruned_keogh_eq", Json::num(self.stats.pruned_keogh_eq)),
            ("pruned_keogh_ec", Json::num(self.stats.pruned_keogh_ec)),
            ("index_probes", Json::num(self.stats.index_probes)),
            ("index_candidates", Json::num(self.stats.index_candidates)),
            ("index_fallbacks", Json::num(self.stats.index_fallbacks)),
            (
                "groups_skipped_by_index",
                Json::num(self.stats.groups_skipped_by_index),
            ),
            (
                "prune_rate",
                Json::Num((self.prune_rate() * 1e4).round() / 1e4),
            ),
            (
                "paa_prune_rate",
                Json::Num((self.paa_prune_rate() * 1e4).round() / 1e4),
            ),
        ])
    }
}

/// The three pruning variants, in baseline order.
fn variants() -> [(&'static str, QueryOptions); 3] {
    [
        ("cascade", QueryOptions::default()),
        (
            "rep_only",
            QueryOptions {
                cascade: false,
                ..QueryOptions::default()
            },
        ),
        (
            "unpruned",
            QueryOptions {
                lb_pruning: false,
                ..QueryOptions::default()
            },
        ),
    ]
}

fn request(class: &str, q: &Query, options: QueryOptions) -> QueryRequest {
    let exact = MatchMode::Exact(q.values.len());
    match class {
        "best_match_exact" => QueryRequest::BestMatch {
            values: q.values.clone(),
            mode: exact,
            options,
        },
        "best_match_any" => QueryRequest::BestMatch {
            values: q.values.clone(),
            mode: MatchMode::Any,
            options,
        },
        "top_k_10_exact" => QueryRequest::TopK {
            values: q.values.clone(),
            mode: exact,
            k: 10,
            options,
        },
        "range_verified_exact" => QueryRequest::WithinThreshold {
            values: q.values.clone(),
            mode: exact,
            verify: true,
            options,
        },
        other => unreachable!("unknown query class {other}"),
    }
}

const CLASSES: [&str; 4] = [
    "best_match_exact",
    "best_match_any",
    "top_k_10_exact",
    "range_verified_exact",
];

/// One `serve_class` run: wall clock, merged per-query latencies, and the
/// two degradation tallies the robustness layer can raise — queries shed
/// by admission control ([`onex_core::OnexError::Overloaded`]) and
/// answers that lost their parallel fast path (`stats.degraded`). Both
/// are 0 in a healthy bench run; the baseline records them so a serving
/// regression that starts shedding is visible, not silent.
struct ServeRun {
    elapsed: f64,
    latencies: Vec<f64>,
    shed: usize,
    degraded: usize,
}

/// Drives one shared explorer from `clients` threads, each issuing
/// `ops_per_client` queries of `class` round-robin over the query mix
/// (offset by client index so concurrent clients do not march in
/// lockstep). Shed queries (admission control) count toward `shed`
/// rather than panicking the bench; any other error still does.
fn serve_class(
    explorer: &Explorer,
    queries: &[Query],
    class: &str,
    clients: usize,
    ops_per_client: usize,
) -> ServeRun {
    let t0 = Instant::now();
    let per_client: Vec<(Vec<f64>, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(ops_per_client);
                    let (mut shed, mut degraded) = (0, 0);
                    for i in 0..ops_per_client {
                        let q = &queries[(c + i) % queries.len()];
                        let req = request(class, q, QueryOptions::default());
                        let t = Instant::now();
                        match explorer.query(req) {
                            Ok(resp) => {
                                latencies.push(t.elapsed().as_secs_f64());
                                degraded += resp.stats.degraded as usize;
                            }
                            Err(onex_core::OnexError::Overloaded { .. }) => shed += 1,
                            Err(e) => panic!("serving query failed: {e}"),
                        }
                    }
                    (latencies, shed, degraded)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serving client thread"))
            .collect()
    });
    let elapsed = t0.elapsed().as_secs_f64();
    let mut run = ServeRun {
        elapsed,
        latencies: Vec::new(),
        shed: 0,
        degraded: 0,
    };
    for (lat, shed, degraded) in per_client {
        run.latencies.extend(lat);
        run.shed += shed;
        run.degraded += degraded;
    }
    run
}

/// The serving section of one dataset block: for every query class and
/// every [`SERVING_CLIENTS`] count, throughput (qps) and p50/p95/p99
/// latency of N client threads hammering the one shared explorer.
fn serve_dataset(explorer: &Explorer, queries: &[Query], ctx: &Ctx, ds: PaperDataset) -> Json {
    let ops_per_client = queries.len() * ctx.runs.max(1);
    let widths = [22, 8, 8, 10, 11, 11, 11];
    let mut table = harness::Table::new(
        &format!("serving_{}", ds.name()),
        &["class", "clients", "ops", "qps", "p50", "p95", "p99"],
        &widths,
    );
    let mut class_objs = Vec::new();
    for class in CLASSES {
        let mut client_objs = Vec::new();
        for &clients in &SERVING_CLIENTS {
            let run = serve_class(explorer, queries, class, clients, ops_per_client);
            let ops = run.latencies.len();
            let qps = if run.elapsed > 0.0 {
                ops as f64 / run.elapsed
            } else {
                0.0
            };
            let (p50, p95, p99) = (
                harness::percentile(&run.latencies, 50.0),
                harness::percentile(&run.latencies, 95.0),
                harness::percentile(&run.latencies, 99.0),
            );
            table.row(vec![
                class.to_string(),
                format!("{clients}"),
                format!("{ops}"),
                format!("{qps:.0}"),
                fmt_secs(p50),
                fmt_secs(p95),
                fmt_secs(p99),
            ]);
            client_objs.push(Json::obj(vec![
                ("clients", Json::num(clients)),
                ("ops", Json::num(ops)),
                ("qps", Json::Num((qps * 100.0).round() / 100.0)),
                (
                    "p50_latency_us",
                    Json::Num((p50 * 1e6 * 100.0).round() / 100.0),
                ),
                (
                    "p95_latency_us",
                    Json::Num((p95 * 1e6 * 100.0).round() / 100.0),
                ),
                (
                    "p99_latency_us",
                    Json::Num((p99 * 1e6 * 100.0).round() / 100.0),
                ),
                ("shed", Json::num(run.shed)),
                ("degraded", Json::num(run.degraded)),
            ]));
        }
        class_objs.push(Json::obj(vec![
            ("class", Json::str(class)),
            ("clients", Json::Arr(client_objs)),
        ]));
    }
    table.finish(ctx.csv());
    Json::Arr(class_objs)
}

fn measure_dataset(ds: PaperDataset, ctx: &Ctx) -> Json {
    let data = ds.generate_scaled(ctx.scale, ctx.seed);
    let (base, build_time) = build_timed(&data, ctx.config());
    let explorer = Explorer::from_base(base);
    let base = explorer.base();
    let (n_in, n_out) = ctx.query_mix();
    let queries = make_queries(ds, &base, n_in, n_out, ctx.seed);
    let stats = base.stats();
    println!(
        "\n  {} (scale {}): {} series, {} subsequences, {} reps  (build {})",
        ds.name(),
        ctx.scale,
        base.dataset().len(),
        stats.subsequences,
        stats.representatives,
        fmt_secs(build_time.as_secs_f64())
    );
    let widths = [22, 9, 11, 10, 9, 9, 9, 9, 9, 9, 9];
    let mut table = harness::Table::new(
        &format!("perf_{}", ds.name()),
        &[
            "class/variant",
            "latency",
            "dtw evals",
            "prune %",
            "idx_skip",
            "paa",
            "kim",
            "keogh_eq",
            "keogh_ec",
            "suffix",
            "lb_keogh",
        ],
        &widths,
    );
    let mut class_objs = Vec::new();
    for class in CLASSES {
        let mut variant_objs = Vec::new();
        for (variant, options) in variants() {
            let mut cell = Cell::default();
            let mut latencies = Vec::new();
            for q in &queries {
                let req = request(class, q, options);
                let resp = explorer.query(req).expect("benchmark query answers");
                cell.absorb(&resp.stats);
                latencies.push(harness::time_avg(ctx.runs, || {
                    let _ = explorer.query(request(class, q, options));
                }));
            }
            cell.avg_latency_s = harness::mean(&latencies);
            cell.p50_latency_s = harness::p50(&latencies);
            table.row(vec![
                format!("{class}/{variant}"),
                fmt_secs(cell.avg_latency_s),
                format!("{}", cell.stats.dtw_evals),
                format!("{:.1}", cell.prune_rate() * 100.0),
                format!("{}", cell.stats.groups_skipped_by_index),
                format!("{}", cell.stats.pruned_paa),
                format!("{}", cell.stats.pruned_kim),
                format!("{}", cell.stats.pruned_keogh_eq),
                format!("{}", cell.stats.pruned_keogh_ec),
                format!("{}", cell.stats.early_abandons),
                format!("{}", cell.stats.lb_keogh_evals),
            ]);
            variant_objs.push(cell.into_json(variant));
        }
        class_objs.push(Json::obj(vec![
            ("class", Json::str(class)),
            ("variants", Json::Arr(variant_objs)),
        ]));
    }
    table.finish(ctx.csv());
    println!("\n  serving ({} clients on one explorer):", {
        let counts: Vec<String> = SERVING_CLIENTS.iter().map(|c| c.to_string()).collect();
        counts.join("/")
    });
    let serving = serve_dataset(&explorer, &queries, ctx, ds);
    // The parameters the engine actually *resolved* for this dataset —
    // not the CLI-level config echo. Each distinct query length gets its
    // concrete Sakoe-Chiba band radius (`Window::resolve(len, len)`, the
    // radius every stored envelope at that length was built with) and its
    // clamped sketch width, so the baseline pins what the counters were
    // measured under even if the resolution rules ever change.
    let config = base.config();
    let mut qlens: Vec<usize> = queries.iter().map(|q| q.values.len()).collect();
    qlens.sort_unstable();
    qlens.dedup();
    let resolved: Vec<Json> = qlens
        .into_iter()
        .map(|len| {
            Json::obj(vec![
                ("len", Json::num(len)),
                ("band_radius", Json::num(config.window.resolve(len, len))),
                ("paa_width", Json::num(config.paa_width.clamp(1, len))),
            ])
        })
        .collect();
    Json::obj(vec![
        ("name", Json::str(ds.name())),
        ("series", Json::num(base.dataset().len())),
        ("subsequences", Json::num(stats.subsequences)),
        ("representatives", Json::num(stats.representatives)),
        ("window", Json::Str(format!("{:?}", config.window))),
        ("st", Json::Num(config.st)),
        ("paa_width", Json::num(config.paa_width)),
        ("resolved_query_params", Json::Arr(resolved)),
        ("classes", Json::Arr(class_objs)),
        ("serving", serving),
    ])
}

/// Runs the perf baseline; writes JSON to `ctx.json_out` when set and, when
/// `ctx.check_against` names a checked-in baseline, compares against it.
/// Returns `false` when the regression check fails.
pub fn run(ctx: &Ctx) -> bool {
    println!(
        "\n== Perf baseline (counters are exact; latency informational, p50 loosely gated) =="
    );
    let mut datasets = Vec::new();
    for ds in DATASETS {
        datasets.push(measure_dataset(ds, ctx));
    }
    let config = ctx.config();
    let cores = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1);
    let doc = Json::obj(vec![
        ("version", Json::num(3)),
        ("scale", Json::Num(ctx.scale)),
        ("seed", Json::num(ctx.seed as usize)),
        ("runs", Json::num(ctx.runs)),
        ("cores", Json::num(cores)),
        ("window", Json::Str(format!("{:?}", config.window))),
        ("st", Json::Num(config.st)),
        ("datasets", Json::Arr(datasets)),
    ]);
    if let Some(path) = &ctx.json_out {
        match std::fs::write(path, doc.render()) {
            Ok(()) => println!("\n(json written to {})", path.display()),
            Err(e) => {
                eprintln!("json: cannot write {}: {e}", path.display());
                return false;
            }
        }
    }
    if let Some(baseline) = &ctx.check_against {
        return check_against(&doc, baseline);
    }
    true
}

/// Looks up `datasets[name].classes[class].variants[variant]` in a
/// baseline document.
fn find_cell<'a>(doc: &'a Json, name: &str, class: &str, variant: &str) -> Option<&'a Json> {
    let ds = doc
        .get("datasets")?
        .as_arr()?
        .iter()
        .find(|d| d.get("name").and_then(Json::as_str) == Some(name))?;
    let cl = ds
        .get("classes")?
        .as_arr()?
        .iter()
        .find(|c| c.get("class").and_then(Json::as_str) == Some(class))?;
    cl.get("variants")?
        .as_arr()?
        .iter()
        .find(|v| v.get("variant").and_then(Json::as_str) == Some(variant))
}

/// One gated quantity comparison: `fresh ≤ factor × baseline`.
fn gate_leq(label: &str, fresh: f64, baseline: f64, factor: f64) -> bool {
    let ratio = if baseline > 0.0 {
        fresh / baseline
    } else if fresh == 0.0 {
        1.0
    } else {
        f64::INFINITY
    };
    let ok = ratio <= factor;
    println!(
        "    {label}: {fresh} vs {baseline} ({ratio:.2}x) {}",
        if ok { "ok" } else { "FAIL" }
    );
    ok
}

/// The CI regression gate over every [`GATED_CLASSES`] entry under the
/// default cascade: DTW evaluations and member evaluations must not
/// exceed [`REGRESSION_FACTOR`] × the checked-in baseline, the tier-0
/// (PAA sketch) prune rate must retain at least [`PAA_RATE_FLOOR`] of the
/// baseline's, and the per-class p50 wall-clock latency must stay within
/// `LATENCY_REGRESSION_FACTOR` × baseline. On top of the comparisons,
/// the fresh run itself must show `groups_skipped_by_index > 0` on every
/// dataset — proof the symbolic index engaged rather than silently
/// degrading to a full-scan no-op. Counter gates are exact and immune to
/// shared-runner noise; fields absent from an older baseline are skipped
/// with a notice.
fn check_against(fresh: &Json, baseline_path: &Path) -> bool {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("perf check: cannot read {}: {e}", baseline_path.display());
            return false;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "perf check: {} is not valid JSON: {e}",
                baseline_path.display()
            );
            return false;
        }
    };
    for key in ["scale", "seed"] {
        let (f, b) = (
            fresh.get(key).and_then(Json::as_f64),
            baseline.get(key).and_then(Json::as_f64),
        );
        if f != b {
            eprintln!("perf check: {key} mismatch (fresh {f:?} vs baseline {b:?}); rerun with the baseline's flags");
            return false;
        }
    }
    let mut ok = true;
    let mut compared = 0;
    println!("\nperf check against {}:", baseline_path.display());
    for ds in DATASETS {
        for class in GATED_CLASSES.iter() {
            let fresh_cell = find_cell(fresh, ds.name(), class, "cascade");
            let base_cell = find_cell(&baseline, ds.name(), class, "cascade");
            let (Some(fresh_cell), Some(base_cell)) = (fresh_cell, base_cell) else {
                eprintln!("  {}/{class}: missing from baseline — skipped", ds.name());
                continue;
            };
            let field = |cell: &Json, key: &str| cell.get(key).and_then(Json::as_f64);
            let (Some(fresh_evals), Some(base_evals)) = (
                field(fresh_cell, "dtw_evals"),
                field(base_cell, "dtw_evals"),
            ) else {
                eprintln!("  {}/{class}: missing dtw_evals — skipped", ds.name());
                continue;
            };
            compared += 1;
            println!("  {}/{class}:", ds.name());
            ok &= gate_leq("dtw_evals", fresh_evals, base_evals, REGRESSION_FACTOR);
            // Member evaluations: the quantity the sketch tier protects.
            match (
                field(fresh_cell, "members_examined"),
                field(base_cell, "members_examined"),
            ) {
                (Some(f), Some(b)) => ok &= gate_leq("members_examined", f, b, REGRESSION_FACTOR),
                _ => println!("    members_examined: not in baseline — skipped"),
            }
            // Tier-0 prune rate: must not silently erode.
            match (
                field(fresh_cell, "paa_prune_rate"),
                field(base_cell, "paa_prune_rate"),
            ) {
                (Some(f), Some(b)) => {
                    let floor = b * PAA_RATE_FLOOR;
                    let good = f >= floor;
                    println!(
                        "    paa_prune_rate: {f:.4} vs {b:.4} (floor {floor:.4}) {}",
                        if good { "ok" } else { "FAIL" }
                    );
                    ok &= good;
                }
                _ => println!("    paa_prune_rate: not in baseline — skipped"),
            }
            // Wall-clock p50: a deliberately loose guard (latency on
            // shared runners is noisy; counters remain the primary gate)
            // that still catches order-of-magnitude slowdowns.
            match (
                field(fresh_cell, "p50_latency_us"),
                field(base_cell, "p50_latency_us"),
            ) {
                (Some(f), Some(b)) => {
                    ok &= gate_leq("p50_latency_us", f, b, LATENCY_REGRESSION_FACTOR)
                }
                _ => println!("    p50_latency_us: not in baseline — skipped"),
            }
        }
    }
    // Index engagement: every dataset's cascade cells, summed over all
    // query classes, must certify at least one group skip in the fresh
    // run — a zero means the symbolic index never fired and the cascade
    // silently absorbed its work.
    println!("  index engagement (fresh run, cascade, all classes):");
    for ds in DATASETS {
        let skipped: f64 = CLASSES
            .iter()
            .filter_map(|class| find_cell(fresh, ds.name(), class, "cascade"))
            .filter_map(|cell| cell.get("groups_skipped_by_index").and_then(Json::as_f64))
            .sum();
        let good = skipped > 0.0;
        println!(
            "    {}: groups_skipped_by_index = {skipped} {}",
            ds.name(),
            if good { "ok" } else { "FAIL" }
        );
        ok &= good;
    }
    // Serving throughput: self-relative within the fresh run (the
    // baseline is never consulted, so recording machines and CI runners
    // with different core counts cannot conflict) — the multi-client qps
    // on the gate dataset, ops-weighted across all query classes, must
    // reach [`SERVING_SPEEDUP_FLOOR`] × the same run's single-client qps.
    // Skipped with a notice on single-core machines, where there is no
    // parallelism to measure.
    let fresh_cores = fresh.get("cores").and_then(Json::as_f64).unwrap_or(1.0);
    let gate_ds = SERVING_GATE_DATASET.name();
    if fresh_cores < 2.0 {
        println!("  serving speedup: skipped ({fresh_cores} core(s) — no parallelism to measure)");
    } else {
        // Aggregate qps per client count: total ops over total seconds,
        // with per-cell seconds recovered as ops/qps.
        let qps_at = |clients: usize| -> Option<f64> {
            let serving = fresh
                .get("datasets")?
                .as_arr()?
                .iter()
                .find(|d| d.get("name").and_then(Json::as_str) == Some(gate_ds))?
                .get("serving")?
                .as_arr()?;
            let mut ops = 0.0;
            let mut secs = 0.0;
            for class in serving {
                let cell =
                    class.get("clients")?.as_arr()?.iter().find(|c| {
                        c.get("clients").and_then(Json::as_f64) == Some(clients as f64)
                    })?;
                let o = cell.get("ops").and_then(Json::as_f64)?;
                let q = cell.get("qps").and_then(Json::as_f64)?;
                if q > 0.0 {
                    ops += o;
                    secs += o / q;
                }
            }
            (secs > 0.0).then(|| ops / secs)
        };
        let multi = SERVING_CLIENTS[SERVING_CLIENTS.len() - 1];
        match (qps_at(1), qps_at(multi)) {
            (Some(q1), Some(qn)) => {
                let speedup = qn / q1;
                let good = speedup >= SERVING_SPEEDUP_FLOOR;
                println!(
                    "  serving speedup ({gate_ds}, {multi} vs 1 clients): {qn:.0} / {q1:.0} qps \
                     = {speedup:.2}x (floor {SERVING_SPEEDUP_FLOOR}x) {}",
                    if good { "ok" } else { "FAIL" }
                );
                ok &= good;
            }
            _ => println!("  serving speedup: serving section missing from fresh run — skipped"),
        }
    }
    if compared == 0 {
        eprintln!("perf check: nothing compared — baseline format mismatch?");
        return false;
    }
    if !ok {
        eprintln!(
            "perf check FAILED: gated counters regressed beyond {REGRESSION_FACTOR}x, the \
             tier-0 prune rate fell below {PAA_RATE_FLOOR} of baseline, a query class's p50 \
             latency regressed beyond {LATENCY_REGRESSION_FACTOR}x, the symbolic index \
             certified zero skips on some dataset, or multi-client serving throughput fell \
             below {SERVING_SPEEDUP_FLOOR}x single-client"
        );
    }
    ok
}
