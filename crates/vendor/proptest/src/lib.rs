//! Offline stand-in for `proptest`, covering the surface this workspace's
//! property tests use: the `proptest!` macro, `Strategy` with
//! `prop_map`/`prop_flat_map`, range and tuple strategies,
//! `prop::collection::vec`, `any::<T>()`, `prop_assert*!`, `prop_assume!`,
//! and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (test name hash + case index), and failing cases are
//! **not shrunk** — the failure report carries the case index so a run can
//! be reproduced, but minimization is up to the reader. For CI regression
//! purposes (the role these tests play here) that is sufficient.

use rand::{Rng, SeedableRng, SmallRng};
use std::ops::{Range, RangeInclusive};

/// Outcome of a single generated case (used by the macros).
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// `prop_assert*!` failed; the test fails.
    Fail(String),
}

/// Runner configuration (stand-in for `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The random source handed to strategies. FNV-hashes the test name with
/// the case index so every property gets an independent, reproducible
/// stream.
pub struct TestRng(SmallRng);

impl TestRng {
    /// Deterministic rng for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9E37)))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

/// A generator of random values (stand-in for `proptest::strategy::Strategy`;
/// no shrinking, so a strategy is just a sampling function).
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value (stand-in for
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(usize, u8, u16, u64, u32, i32, i64, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// `any::<T>()` — the full domain of `T` (stand-in for
/// `proptest::arbitrary::any`).
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Types `any` can generate.
pub trait ArbitraryValue {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<u64>()
    }
}

impl ArbitraryValue for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<u32>()
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng().gen::<bool>()
    }
}

/// See [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (stand-in for `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Lengths a generated `Vec` may take.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.rng().gen_range(self.clone())
        }
    }

    /// A `Vec` of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: IntoSizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The import surface tests pull in with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// `prop::…` namespace (upstream's prelude exposes the same alias).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body; failure fails only the
/// current case (with its index in the message), not via panic unwinding
/// through generated values.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a premise.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests (stand-in for `proptest::proptest!`). Each
/// `fn name(pat in strategy, …) { body }` item becomes a `#[test]` running
/// `config.cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rejected: u32 = 0;
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            msg
                        );
                    }
                }
            }
            assert!(
                rejected < config.cases,
                "property `{}` rejected every case via prop_assume!",
                stringify!($name)
            );
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(n in 1..10usize, f in -1.0..1.0f64) {
            prop_assert!((1..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_obeys_size((v, w) in (prop::collection::vec(0.0..1.0f64, 3..=5), prop::collection::vec(0..9u32, 2))) {
            prop_assert!(v.len() >= 3 && v.len() <= 5);
            prop_assert_eq!(w.len(), 2);
        }

        #[test]
        fn flat_map_builds_dependent_pairs((x, y) in (2..6usize).prop_flat_map(|n| (
            prop::collection::vec(0.0..1.0f64, n),
            prop::collection::vec(0.0..1.0f64, n),
        ))) {
            prop_assert_eq!(x.len(), y.len());
        }

        #[test]
        fn assume_rejects_without_failing(n in 0..100usize) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn determinism_per_test_name() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        use rand::Rng;
        assert_eq!(a.rng().gen::<u64>(), b.rng().gen::<u64>());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.rng().gen::<u64>(), c.rng().gen::<u64>());
    }
}
